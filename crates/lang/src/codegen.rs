//! K64 code generation.
//!
//! One compilation unit becomes one KELF object. Layout follows the
//! option set (paper §3.2 and §6.3):
//!
//! * **function-sections on** (pre/post builds): every function in its own
//!   `.text.<name>` section; *all* cross-item references — including calls
//!   between functions of the same unit — are relocations, and branches
//!   always use the general `rel32` form.
//! * **function-sections off** (shipped kernels): the unit's functions
//!   share one `.text`, separated by alignment no-ops; intra-unit calls
//!   are resolved at assembly time with no relocation; branches are
//!   relaxed to `rel8` where they fit.
//!
//! The calling convention: arguments in `r1`–`r6`, result in `r0`,
//! `r7`–`r13` callee-saved, `fp`/`sp` as usual. Expression evaluation is
//! accumulator-style through `r0` with intermediates on the machine
//! stack, which keeps codegen simple while still producing code whose
//! bytes shift globally when any function's length changes — the §3.1
//! phenomenon pre-post differencing has to cope with.

use std::collections::BTreeMap;

use ksplice_asm::{Assembler, BinOp, Cond, Instr, Label, PatchPoint, Reg};
use ksplice_object::{
    Binding, Object, Reloc, RelocKind, Section, SectionFlags, SectionKind, SymKind, Symbol,
};

use crate::ast::*;
use crate::sema::{const_eval_with, round_up, ConstVal, Sema, WORD};
use crate::{CompileError, Options};

/// Generates the object for a checked, optimised unit.
pub fn gen_unit(unit: &Unit, sema: &Sema, opt: &Options) -> Result<Object, CompileError> {
    let mut g = Gen::new(unit, sema, opt);
    g.gen_functions(unit)?;
    g.gen_hooks(unit)?;
    g.finish()
}

/// Where a datum lives, before sections are finalised.
#[derive(Debug)]
struct DataItem {
    /// Symbol name.
    sym: String,
    binding: Binding,
    size: u64,
    align: u64,
    /// `None` for zero-initialised (goes to `.bss`).
    bytes: Option<Vec<u8>>,
    /// Relocations within the datum (offset, symbol name, addend).
    relocs: Vec<(u64, String, i64)>,
    /// Read-only (rodata) vs writable.
    readonly: bool,
}

/// A function's generated code, pending section placement.
struct CodeItem {
    name: String,
    binding: Binding,
    code: Vec<u8>,
    patches: Vec<PatchPoint>,
}

/// A local variable's storage.
#[derive(Debug, Clone)]
enum Storage {
    /// Stack slot at `fp - offset` (offset positive).
    Slot(i32),
    /// Function-lifetime data symbol (static local).
    Static(String),
}

#[derive(Debug, Clone)]
struct LocalVar {
    storage: Storage,
    ty: Type,
}

struct Gen<'a> {
    sema: &'a Sema,
    opt: &'a Options,
    /// Scratch register for binop right-hand sides; depends on
    /// `cc_version` so that different "compiler releases" produce
    /// different, equally-correct bytes.
    scratch: Reg,
    /// Function alignment, also version-dependent.
    func_align: u32,
    data: Vec<DataItem>,
    code: Vec<CodeItem>,
    /// Counter for string literal symbols.
    str_counter: u32,
    /// Counter for static local symbol suffixes (gcc's `name.NNNN`).
    static_counter: u32,
    /// Hook entries: (section, function symbol).
    hooks: Vec<(&'static str, String)>,
    /// Monolithic-mode function placements: (name, is_static, offset).
    mono_funcs: Vec<(String, bool, u64)>,
    unit_name: String,
}

impl<'a> Gen<'a> {
    fn new(unit: &Unit, sema: &'a Sema, opt: &'a Options) -> Gen<'a> {
        Gen {
            sema,
            opt,
            scratch: if opt.cc_version >= 2 {
                Reg::R2
            } else {
                Reg::R1
            },
            func_align: if opt.cc_version >= 2 { 32 } else { 16 },
            data: Vec::new(),
            code: Vec::new(),
            str_counter: 0,
            static_counter: 0,
            hooks: Vec::new(),
            mono_funcs: Vec::new(),
            unit_name: unit.name.clone(),
        }
    }

    fn err(&self, line: u32, msg: impl Into<String>) -> CompileError {
        CompileError::new(&self.unit_name, line, msg)
    }

    // ---- data ------------------------------------------------------------

    fn emit_global(&mut self, g: &Global) -> Result<(), CompileError> {
        let size = self.sema.size_of(&g.ty);
        let align = match g.ty {
            Type::Byte => 1,
            Type::Array(ref e, _) if **e == Type::Byte => 1,
            _ => WORD,
        };
        let binding = if g.is_static {
            Binding::Local
        } else {
            Binding::Global
        };
        let (bytes, relocs) = match &g.init {
            None => (None, Vec::new()),
            Some(init) => {
                let mut buf = vec![0u8; size as usize];
                let mut relocs = Vec::new();
                self.fill_init(&g.ty, init, &mut buf, 0, &mut relocs, g.line)?;
                (Some(buf), relocs)
            }
        };
        self.data.push(DataItem {
            sym: g.name.clone(),
            binding,
            size,
            align,
            bytes,
            relocs,
            readonly: false,
        });
        Ok(())
    }

    /// Writes a constant initialiser into `buf` at `at`.
    fn fill_init(
        &mut self,
        ty: &Type,
        init: &Init,
        buf: &mut [u8],
        at: u64,
        relocs: &mut Vec<(u64, String, i64)>,
        line: u32,
    ) -> Result<(), CompileError> {
        match (ty, init) {
            (Type::Array(elem, _), Init::Scalar(e)) if **elem == Type::Byte => {
                // `byte msg[n] = "...";`
                let Some(ConstVal::Str(s)) = self.const_eval(e) else {
                    return Err(self.err(line, "byte array initialiser must be a string"));
                };
                if s.len() + 1 > buf.len() - at as usize {
                    return Err(self.err(line, "string longer than array"));
                }
                buf[at as usize..at as usize + s.len()].copy_from_slice(&s);
                Ok(())
            }
            (t, Init::Scalar(e)) if t.is_scalar() => self.fill_scalar(t, e, buf, at, relocs, line),
            (Type::Array(elem, n), Init::List(items)) => {
                let esize = self.sema.size_of(elem);
                if items.len() as u64 > *n {
                    return Err(self.err(line, "too many array initialisers"));
                }
                for (i, e) in items.iter().enumerate() {
                    self.fill_scalar(elem, e, buf, at + i as u64 * esize, relocs, line)?;
                }
                Ok(())
            }
            (Type::Struct(name), Init::List(items)) => {
                let layout = self.sema.layout(name).expect("checked").clone();
                if items.len() > layout.fields.len() {
                    return Err(self.err(line, "too many struct initialisers"));
                }
                for (e, (_, off, fty)) in items.iter().zip(&layout.fields) {
                    self.fill_scalar(fty, e, buf, at + off, relocs, line)?;
                }
                Ok(())
            }
            _ => Err(self.err(line, "initialiser does not match type")),
        }
    }

    fn fill_scalar(
        &mut self,
        ty: &Type,
        e: &Expr,
        buf: &mut [u8],
        at: u64,
        relocs: &mut Vec<(u64, String, i64)>,
        line: u32,
    ) -> Result<(), CompileError> {
        if !ty.is_scalar() {
            return Err(self.err(line, "aggregate field initialisers are not supported"));
        }
        match self.const_eval(e) {
            Some(ConstVal::Int(v)) => {
                let w = if *ty == Type::Byte { 1 } else { 8 };
                buf[at as usize..at as usize + w].copy_from_slice(&v.to_le_bytes()[..w]);
                Ok(())
            }
            Some(ConstVal::SymAddr(name, off)) => {
                relocs.push((at, name, off));
                Ok(())
            }
            Some(ConstVal::Str(s)) => {
                let sym = self.intern_string(&s);
                relocs.push((at, sym, 0));
                Ok(())
            }
            None => Err(self.err(line, "initialiser is not a link-time constant")),
        }
    }

    fn const_eval(&self, e: &Expr) -> Option<ConstVal> {
        let sema = self.sema;
        const_eval_with(e, &|name| {
            if sema.functions.contains_key(name)
                || sema.global_type(name).is_some()
                || sema.externs.contains(name)
            {
                Some(())
            } else {
                None
            }
        })
    }

    /// Adds a string literal to rodata, returning its symbol name.
    fn intern_string(&mut self, s: &[u8]) -> String {
        let sym = format!(".str.{}", self.str_counter);
        self.str_counter += 1;
        let mut bytes = s.to_vec();
        bytes.push(0);
        self.data.push(DataItem {
            sym: sym.clone(),
            binding: Binding::Local,
            size: bytes.len() as u64,
            align: 1,
            bytes: Some(bytes),
            relocs: Vec::new(),
            readonly: true,
        });
        sym
    }

    // ---- functions ---------------------------------------------------------

    fn gen_functions(&mut self, unit: &Unit) -> Result<(), CompileError> {
        // Emit globals first so static-local counters follow gcc-like
        // ordering (file scope before function bodies).
        for item in &unit.items {
            if let FileItem::Global(g) = item {
                self.emit_global(g)?;
            }
        }
        if self.opt.function_sections {
            for item in &unit.items {
                if let FileItem::Func(f) = item {
                    let mut asm = Assembler::new();
                    let labels = BTreeMap::new();
                    self.gen_function(f, &mut asm, &labels, None)?;
                    let out = asm
                        .finish()
                        .map_err(|e| self.err(f.line, format!("assembly failed: {e}")))?;
                    self.code.push(CodeItem {
                        name: f.name.clone(),
                        binding: if f.is_static {
                            Binding::Local
                        } else {
                            Binding::Global
                        },
                        code: out.code,
                        patches: out.patches,
                    });
                }
            }
        } else {
            // Monolithic `.text`: one assembler, entry labels per function,
            // intra-unit calls resolved at assembly time.
            let mut asm = if self.opt.relax_branches() {
                Assembler::new_relaxed()
            } else {
                Assembler::new()
            };
            let mut entries: BTreeMap<String, Label> = BTreeMap::new();
            for item in &unit.items {
                if let FileItem::Func(f) = item {
                    entries.insert(f.name.clone(), asm.new_label());
                }
            }
            let mut order = Vec::new();
            for item in &unit.items {
                if let FileItem::Func(f) = item {
                    asm.align(self.func_align);
                    let entry = entries[&f.name];
                    asm.bind(entry);
                    self.gen_function(f, &mut asm, &entries, Some(entry))?;
                    order.push((f.name.clone(), f.is_static, entry));
                }
            }
            let out = asm
                .finish()
                .map_err(|e| self.err(0, format!("assembly failed: {e}")))?;
            // One CodeItem per function, carved out of the shared text by
            // label offsets; the final Object keeps them as symbols into a
            // single `.text` section. We keep the monolithic bytes in a
            // sentinel CodeItem and record per-function symbol offsets.
            self.code.push(CodeItem {
                name: MONOLITHIC.to_string(),
                binding: Binding::Local,
                code: out.code,
                patches: out.patches,
            });
            self.mono_funcs = order
                .into_iter()
                .map(|(name, is_static, entry)| (name, is_static, out.label_offsets[&entry] as u64))
                .collect();
        }
        Ok(())
    }

    fn gen_hooks(&mut self, unit: &Unit) -> Result<(), CompileError> {
        for item in &unit.items {
            if let FileItem::Hook { kind, func, .. } = item {
                self.hooks.push((kind.section_name(), func.clone()));
            }
        }
        Ok(())
    }

    fn gen_function(
        &mut self,
        f: &Function,
        asm: &mut Assembler,
        entries: &BTreeMap<String, Label>,
        _entry: Option<Label>,
    ) -> Result<(), CompileError> {
        let mut fg = FuncGen {
            g: self,
            asm,
            entries,
            func: f,
            scopes: vec![Vec::new()],
            next_slot: 0,
            loop_stack: Vec::new(),
            exit: None,
        };
        fg.run()
    }

    // ---- finalisation ------------------------------------------------------

    fn finish(mut self) -> Result<Object, CompileError> {
        let mut obj = Object::new(&self.unit_name);
        // Data sections.
        let data_items = std::mem::take(&mut self.data);
        if self.opt.data_sections {
            for item in data_items {
                self.place_data_own_section(&mut obj, item);
            }
        } else {
            self.place_data_merged(&mut obj, data_items);
        }
        // Text sections.
        let code_items = std::mem::take(&mut self.code);
        if self.opt.function_sections {
            for item in code_items {
                let name = format!(".text.{}", item.name);
                let mut sec = Section::progbits(&name, SectionFlags::text(), item.code);
                sec.align = self.func_align;
                let sec_idx = obj.add_section(sec);
                let size = obj.sections[sec_idx].size;
                obj.add_symbol(Symbol::defined(
                    &item.name,
                    item.binding,
                    SymKind::Func,
                    sec_idx,
                    0,
                    size,
                ));
                for p in item.patches {
                    let symbol = obj.intern_symbol(&p.name);
                    obj.sections[sec_idx].relocs.push(Reloc {
                        offset: p.offset as u64,
                        kind: if p.pcrel {
                            RelocKind::Pcrel32
                        } else {
                            RelocKind::Abs64
                        },
                        symbol,
                        addend: p.addend,
                    });
                }
            }
        } else if let Some(item) = code_items.into_iter().next() {
            debug_assert_eq!(item.name, MONOLITHIC);
            let mut sec = Section::progbits(".text", SectionFlags::text(), item.code);
            sec.align = self.func_align;
            let sec_idx = obj.add_section(sec);
            // Per-function symbols at their offsets; sizes run to the next
            // function (or section end).
            let mut funcs = std::mem::take(&mut self.mono_funcs);
            funcs.sort_by_key(|(_, _, off)| *off);
            let end = obj.sections[sec_idx].size;
            for i in 0..funcs.len() {
                let (name, is_static, off) = funcs[i].clone();
                let next = funcs.get(i + 1).map(|(_, _, o)| *o).unwrap_or(end);
                obj.add_symbol(Symbol::defined(
                    &name,
                    if is_static {
                        Binding::Local
                    } else {
                        Binding::Global
                    },
                    SymKind::Func,
                    sec_idx,
                    off,
                    next - off,
                ));
            }
            for p in item.patches {
                let symbol = obj.intern_symbol(&p.name);
                obj.sections[sec_idx].relocs.push(Reloc {
                    offset: p.offset as u64,
                    kind: if p.pcrel {
                        RelocKind::Pcrel32
                    } else {
                        RelocKind::Abs64
                    },
                    symbol,
                    addend: p.addend,
                });
            }
        }
        // Hook note sections.
        let hooks = std::mem::take(&mut self.hooks);
        for (section_name, func) in hooks {
            let idx = match obj.section_by_name(section_name) {
                Some((i, _)) => i,
                None => {
                    let mut s = Section::progbits(section_name, SectionFlags::note(), Vec::new());
                    s.kind = SectionKind::Note;
                    s.align = 8;
                    obj.add_section(s)
                }
            };
            let at = obj.sections[idx].data.len() as u64;
            obj.sections[idx].data.extend_from_slice(&[0u8; 8]);
            obj.sections[idx].size += 8;
            let symbol = obj.intern_symbol(&func);
            obj.sections[idx].relocs.push(Reloc {
                offset: at,
                kind: RelocKind::Abs64,
                symbol,
                addend: 0,
            });
        }
        // Data sections are placed before text, so a datum's relocation to
        // a function (ops tables, `int h = &handler;`) interned an
        // undefined symbol before the function's defined entry existed.
        // Redirect such relocations to the defined symbol.
        let defined: std::collections::BTreeMap<String, usize> = obj
            .symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| s.def.is_some())
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        let undef_to_def: Vec<(usize, usize)> = obj
            .symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| s.def.is_none())
            .filter_map(|(i, s)| defined.get(&s.name).map(|&d| (i, d)))
            .collect();
        if !undef_to_def.is_empty() {
            for sec in &mut obj.sections {
                for r in &mut sec.relocs {
                    if let Some(&(_, d)) = undef_to_def.iter().find(|&&(u, _)| u == r.symbol) {
                        r.symbol = d;
                    }
                }
            }
        }
        obj.validate()
            .map_err(|e| self.err(0, format!("internal: generated object invalid: {e}")))?;
        Ok(obj)
    }

    fn place_data_own_section(&mut self, obj: &mut Object, item: DataItem) {
        let (prefix, flags) = match (&item.bytes, item.readonly) {
            (None, _) => (".bss", SectionFlags::data()),
            (Some(_), true) => (".rodata", SectionFlags::rodata()),
            (Some(_), false) => (".data", SectionFlags::data()),
        };
        let name = format!("{prefix}.{}", item.sym);
        let mut sec = match &item.bytes {
            None => Section::nobits(&name, item.size),
            Some(b) => Section::progbits(&name, flags, b.clone()),
        };
        sec.align = item.align.max(1) as u32;
        let sec_idx = obj.add_section(sec);
        obj.add_symbol(Symbol::defined(
            &item.sym,
            item.binding,
            SymKind::Object,
            sec_idx,
            0,
            item.size,
        ));
        for (off, name, addend) in item.relocs {
            let symbol = obj.intern_symbol(&name);
            obj.sections[sec_idx].relocs.push(Reloc {
                offset: off,
                kind: RelocKind::Abs64,
                symbol,
                addend,
            });
        }
    }

    fn place_data_merged(&mut self, obj: &mut Object, items: Vec<DataItem>) {
        // Three merged pools: .data, .rodata, .bss.
        let mut data = Section::progbits(".data", SectionFlags::data(), Vec::new());
        let mut rodata = Section::progbits(".rodata", SectionFlags::rodata(), Vec::new());
        let mut bss = Section::nobits(".bss", 0);
        let mut placements: Vec<(DataItem, usize, u64)> = Vec::new(); // (item, pool id, offset)
        for item in items {
            match (&item.bytes, item.readonly) {
                (None, _) => {
                    let off = round_up(bss.size, item.align);
                    bss.size = off + item.size;
                    placements.push((item, 2, off));
                }
                (Some(b), ro) => {
                    let pool = if ro { &mut rodata } else { &mut data };
                    let off = round_up(pool.data.len() as u64, item.align);
                    pool.data.resize(off as usize, 0);
                    pool.data.extend_from_slice(b);
                    pool.size = pool.data.len() as u64;
                    placements.push((item, if ro { 1 } else { 0 }, off));
                }
            }
        }
        let data_idx = obj.add_section(data);
        let rodata_idx = obj.add_section(rodata);
        let bss_idx = obj.add_section(bss);
        let pool_idx = [data_idx, rodata_idx, bss_idx];
        for (item, pool, off) in placements {
            let sec_idx = pool_idx[pool];
            obj.add_symbol(Symbol::defined(
                &item.sym,
                item.binding,
                SymKind::Object,
                sec_idx,
                off,
                item.size,
            ));
            for (roff, name, addend) in item.relocs {
                let symbol = obj.intern_symbol(&name);
                obj.sections[sec_idx].relocs.push(Reloc {
                    offset: off + roff,
                    kind: RelocKind::Abs64,
                    symbol,
                    addend,
                });
            }
        }
    }
}

const MONOLITHIC: &str = "__unit_text__";

/// Per-function code generation state.
struct FuncGen<'a, 'b> {
    g: &'b mut Gen<'a>,
    asm: &'b mut Assembler,
    entries: &'b BTreeMap<String, Label>,
    func: &'b Function,
    /// Scope stack of live locals.
    scopes: Vec<Vec<(String, LocalVar)>>,
    /// Next free frame offset (positive, below fp).
    next_slot: i32,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(Label, Label)>,
    /// Common epilogue label.
    exit: Option<Label>,
}

impl FuncGen<'_, '_> {
    fn err(&self, line: u32, msg: impl Into<String>) -> CompileError {
        CompileError::new(&self.g.unit_name, line, msg)
    }

    fn run(&mut self) -> Result<(), CompileError> {
        let frame = self.compute_frame_size();
        let exit = self.asm.new_label();
        self.exit = Some(exit);
        // Prologue.
        self.asm.emit(Instr::Push(Reg::FP));
        self.asm.emit(Instr::MovRR(Reg::FP, Reg::SP));
        if frame > 0 {
            self.asm.emit(Instr::AddI(Reg::SP, -frame));
        }
        // Spill arguments to their slots.
        let params: Vec<(String, Type)> = self.func.params.clone();
        for (i, (name, ty)) in params.iter().enumerate() {
            let slot = self.alloc_slot(ty);
            let reg = Reg::from_nibble(1 + i as u8);
            self.asm.emit(Instr::St(Reg::FP, reg, -slot));
            self.declare(
                name,
                LocalVar {
                    storage: Storage::Slot(slot),
                    ty: ty.clone(),
                },
            );
        }
        let body = self.func.body.clone();
        self.gen_block(&body)?;
        // Fall-off-the-end returns 0 (deterministically).
        self.asm.emit(Instr::MovRI32(Reg::R0, 0));
        self.asm.bind(exit);
        self.asm.emit(Instr::MovRR(Reg::SP, Reg::FP));
        self.asm.emit(Instr::Pop(Reg::FP));
        self.asm.emit(Instr::Ret);
        Ok(())
    }

    /// Total frame bytes needed by every declaration in the function.
    fn compute_frame_size(&self) -> i32 {
        fn walk(g: &Gen<'_>, body: &[Stmt], total: &mut u64) {
            for s in body {
                match &s.kind {
                    StmtKind::Decl {
                        ty,
                        is_static: false,
                        ..
                    } => {
                        *total += round_up(g.sema.size_of(ty).max(WORD), WORD);
                    }
                    StmtKind::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(g, then_body, total);
                        walk(g, else_body, total);
                    }
                    StmtKind::While { body, .. } => walk(g, body, total),
                    StmtKind::For {
                        init, step, body, ..
                    } => {
                        if let Some(i) = init {
                            walk(g, std::slice::from_ref(i), total);
                        }
                        if let Some(st) = step {
                            walk(g, std::slice::from_ref(st), total);
                        }
                        walk(g, body, total);
                    }
                    StmtKind::Block(b) => walk(g, b, total),
                    _ => {}
                }
            }
        }
        let mut total = self.func.params.len() as u64 * WORD;
        walk(self.g, &self.func.body, &mut total);
        total as i32
    }

    fn alloc_slot(&mut self, ty: &Type) -> i32 {
        let size = round_up(self.g.sema.size_of(ty).max(WORD), WORD) as i32;
        self.next_slot += size;
        self.next_slot
    }

    fn declare(&mut self, name: &str, var: LocalVar) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.to_string(), var));
    }

    fn lookup(&self, name: &str) -> Option<&LocalVar> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v))
    }

    fn scratch(&self) -> Reg {
        self.g.scratch
    }

    /// Pads loop heads to an 8-byte boundary in monolithic `-O2` builds,
    /// like gcc's `-falign-loops`. Under `-ffunction-sections` the
    /// compiler emits the general unpadded form — so a run kernel and a
    /// pre build legitimately differ by alignment no-ops, which run-pre
    /// matching must skip (paper §4.3).
    fn align_loop_head(&mut self) {
        if !self.g.opt.function_sections && self.g.opt.opt_level >= 2 {
            self.asm.align(8);
        }
    }

    // ---- statements --------------------------------------------------------

    fn gen_block(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(Vec::new());
        for s in body {
            self.gen_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match &s.kind {
            StmtKind::Decl {
                name,
                ty,
                is_static,
                init,
            } => {
                if *is_static {
                    let sym = format!("{name}.{}", self.g.static_counter);
                    self.g.static_counter += 1;
                    let size = self.g.sema.size_of(ty);
                    let (bytes, relocs) = match init {
                        None => (None, Vec::new()),
                        Some(e) => {
                            let mut buf = vec![0u8; size as usize];
                            let mut relocs = Vec::new();
                            let line = e.line;
                            let expr = e.clone();
                            self.g
                                .fill_scalar(ty, &expr, &mut buf, 0, &mut relocs, line)?;
                            (Some(buf), relocs)
                        }
                    };
                    self.g.data.push(DataItem {
                        sym: sym.clone(),
                        binding: Binding::Local,
                        size,
                        align: WORD,
                        bytes,
                        relocs,
                        readonly: false,
                    });
                    self.declare(
                        name,
                        LocalVar {
                            storage: Storage::Static(sym),
                            ty: ty.clone(),
                        },
                    );
                } else {
                    let slot = self.alloc_slot(ty);
                    if let Some(e) = init {
                        self.eval(e)?;
                        self.asm.emit(Instr::St(Reg::FP, Reg::R0, -slot));
                    }
                    self.declare(
                        name,
                        LocalVar {
                            storage: Storage::Slot(slot),
                            ty: ty.clone(),
                        },
                    );
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(())
            }
            StmtKind::Assign { target, value } => {
                let tty = self.type_of(target)?;
                self.eval_lvalue(target)?;
                self.asm.emit(Instr::Push(Reg::R0));
                self.eval(value)?;
                let scratch = self.scratch();
                self.asm.emit(Instr::MovRR(scratch, Reg::R0));
                self.asm.emit(Instr::Pop(Reg::R0));
                if self.is_byte_memory(target, &tty) {
                    self.asm.emit(Instr::St8(Reg::R0, scratch, 0));
                } else {
                    self.asm.emit(Instr::St(Reg::R0, scratch, 0));
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let else_l = self.asm.new_label();
                let end_l = self.asm.new_label();
                self.eval(cond)?;
                self.asm.emit(Instr::CmpI(Reg::R0, 0));
                self.asm.jcc(Cond::Z, else_l);
                self.gen_block(then_body)?;
                if else_body.is_empty() {
                    self.asm.bind(else_l);
                    // end_l unused; bind to keep the assembler satisfied.
                    self.asm.bind(end_l);
                } else {
                    self.asm.jmp(end_l);
                    self.asm.bind(else_l);
                    self.gen_block(else_body)?;
                    self.asm.bind(end_l);
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let top = self.asm.new_label();
                let end = self.asm.new_label();
                self.align_loop_head();
                self.asm.bind(top);
                self.eval(cond)?;
                self.asm.emit(Instr::CmpI(Reg::R0, 0));
                self.asm.jcc(Cond::Z, end);
                self.loop_stack.push((top, end));
                self.gen_block(body)?;
                self.loop_stack.pop();
                self.asm.jmp(top);
                self.asm.bind(end);
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(Vec::new());
                if let Some(i) = init {
                    self.gen_stmt(i)?;
                }
                let top = self.asm.new_label();
                let cont = self.asm.new_label();
                let end = self.asm.new_label();
                self.align_loop_head();
                self.asm.bind(top);
                if let Some(c) = cond {
                    self.eval(c)?;
                    self.asm.emit(Instr::CmpI(Reg::R0, 0));
                    self.asm.jcc(Cond::Z, end);
                }
                self.loop_stack.push((cont, end));
                self.gen_block(body)?;
                self.loop_stack.pop();
                self.asm.bind(cont);
                if let Some(st) = step {
                    self.gen_stmt(st)?;
                }
                self.asm.jmp(top);
                self.asm.bind(end);
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Return(value) => {
                match value {
                    Some(e) => self.eval(e)?,
                    None => self.asm.emit(Instr::MovRI32(Reg::R0, 0)),
                }
                let exit = self.exit.expect("exit label set in run()");
                self.asm.jmp(exit);
                Ok(())
            }
            StmtKind::Break => {
                let (_, end) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err(s.line, "break outside loop"))?;
                self.asm.jmp(end);
                Ok(())
            }
            StmtKind::Continue => {
                let (cont, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| self.err(s.line, "continue outside loop"))?;
                self.asm.jmp(cont);
                Ok(())
            }
            StmtKind::Block(body) => self.gen_block(body),
        }
    }

    // ---- expression typing (mirrors sema's rules) ---------------------------

    fn type_of(&self, e: &Expr) -> Result<Type, CompileError> {
        Ok(match &e.kind {
            ExprKind::Num(_) | ExprKind::Sizeof(_) => Type::Int,
            ExprKind::Str(_) => Type::ptr(Type::Byte),
            ExprKind::Ident(name) => {
                if let Some(v) = self.lookup(name) {
                    v.ty.clone()
                } else if let Some(t) = self.g.sema.global_type(name) {
                    t.clone()
                } else {
                    Type::Int
                }
            }
            ExprKind::Unary(op, inner) => match op {
                UnaryOp::Deref => match decay(self.type_of(inner)?) {
                    Type::Ptr(elem) => *elem,
                    _ => Type::Int,
                },
                UnaryOp::Addr => Type::ptr(self.type_of(inner)?),
                _ => Type::Int,
            },
            ExprKind::Binary(op, l, r) => {
                let lt = decay(self.type_of(l)?);
                let rt = decay(self.type_of(r)?);
                match op {
                    BinaryOp::Add | BinaryOp::Sub => {
                        if matches!(lt, Type::Ptr(_)) {
                            lt
                        } else if matches!(rt, Type::Ptr(_)) {
                            rt
                        } else {
                            Type::Int
                        }
                    }
                    _ => Type::Int,
                }
            }
            ExprKind::Call { .. } => Type::Int,
            ExprKind::Index(base, _) => match decay(self.type_of(base)?) {
                Type::Ptr(elem) => *elem,
                _ => Type::Int,
            },
            ExprKind::Field(base, fname) => {
                let Type::Struct(sname) = self.type_of(base)? else {
                    return Err(self.err(e.line, "`.` on non-struct"));
                };
                self.field(&sname, fname, e.line)?.1
            }
            ExprKind::PField(base, fname) => {
                let Type::Ptr(inner) = decay(self.type_of(base)?) else {
                    return Err(self.err(e.line, "`->` on non-pointer"));
                };
                let Type::Struct(sname) = *inner else {
                    return Err(self.err(e.line, "`->` on non-struct-pointer"));
                };
                self.field(&sname, fname, e.line)?.1
            }
        })
    }

    fn field(&self, sname: &str, fname: &str, line: u32) -> Result<(u64, Type), CompileError> {
        self.g
            .sema
            .field(sname, fname)
            .map(|(off, t)| (off, t.clone()))
            .ok_or_else(|| self.err(line, format!("struct `{sname}` has no field `{fname}`")))
    }

    /// True when loads/stores through this lvalue touch a single byte.
    fn is_byte_memory(&self, lv: &Expr, ty: &Type) -> bool {
        if *ty != Type::Byte {
            return false;
        }
        // Byte-typed *locals* occupy full word slots; byte-typed memory
        // reached through pointers, fields, indexing or globals is 1 byte.
        match &lv.kind {
            ExprKind::Ident(name) => self.lookup(name).is_none(),
            _ => true,
        }
    }

    // ---- expressions ---------------------------------------------------------

    /// Evaluates `e`, leaving the (scalar) result — or the address, for
    /// aggregates — in `r0`.
    fn eval(&mut self, e: &Expr) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Num(v) => {
                self.emit_const(*v);
                Ok(())
            }
            ExprKind::Sizeof(ty) => {
                let size = self.g.sema.size_of(ty);
                self.emit_const(size as i64);
                Ok(())
            }
            ExprKind::Str(s) => {
                let sym = self.g.intern_string(s);
                self.emit_sym_addr(&sym, 0);
                Ok(())
            }
            ExprKind::Ident(name) => self.eval_ident(name, e.line),
            ExprKind::Unary(op, inner) => self.eval_unary(*op, inner, e.line),
            ExprKind::Binary(op, l, r) => self.eval_binary(*op, l, r),
            ExprKind::Call { callee, args } => self.eval_call(callee, args, e.line),
            ExprKind::Index(..) | ExprKind::Field(..) | ExprKind::PField(..) => {
                let ty = self.type_of(e)?;
                self.eval_lvalue(e)?;
                self.load_from_address(e, &ty);
                Ok(())
            }
        }
    }

    fn emit_const(&mut self, v: i64) {
        if let Ok(v32) = i32::try_from(v) {
            self.asm.emit(Instr::MovRI32(Reg::R0, v32));
        } else {
            self.asm.emit(Instr::MovRI64(Reg::R0, v as u64));
        }
    }

    /// Emits `movabs r0, <sym+addend>` with an Abs64 patch point.
    fn emit_sym_addr(&mut self, sym: &str, addend: i64) {
        self.asm.emit_patched(
            Instr::MovRI64(Reg::R0, 0),
            2, // imm64 field offset within the instruction
            8,
            sym,
            addend,
            false,
        );
    }

    fn eval_ident(&mut self, name: &str, line: u32) -> Result<(), CompileError> {
        if let Some(var) = self.lookup(name).cloned() {
            match (&var.storage, &var.ty) {
                (Storage::Slot(off), ty) if ty.is_scalar() => {
                    self.asm.emit(Instr::Ld(Reg::R0, Reg::FP, -off));
                }
                (Storage::Slot(off), _) => {
                    // Aggregates decay to their address.
                    self.asm.emit(Instr::Lea(Reg::R0, Reg::FP, -off));
                }
                (Storage::Static(sym), ty) => {
                    let sym = sym.clone();
                    self.emit_sym_addr(&sym, 0);
                    if ty.is_scalar() {
                        if *ty == Type::Byte {
                            self.asm.emit(Instr::Ld8(Reg::R0, Reg::R0, 0));
                        } else {
                            self.asm.emit(Instr::Ld(Reg::R0, Reg::R0, 0));
                        }
                    }
                }
            }
            return Ok(());
        }
        // Globals defined in this unit or declared by headers.
        if let Some(ty) = self.g.sema.global_type(name).cloned() {
            self.emit_sym_addr(name, 0);
            if ty.is_scalar() {
                if ty == Type::Byte {
                    self.asm.emit(Instr::Ld8(Reg::R0, Reg::R0, 0));
                } else {
                    self.asm.emit(Instr::Ld(Reg::R0, Reg::R0, 0));
                }
            }
            return Ok(());
        }
        // Functions and extern functions denote their address.
        if self.g.sema.functions.contains_key(name) || self.g.sema.extern_funcs.contains(name) {
            self.emit_sym_addr(name, 0);
            return Ok(());
        }
        // Extern / implicit-extern variable: an int-shaped load.
        let _ = line;
        self.emit_sym_addr(name, 0);
        self.asm.emit(Instr::Ld(Reg::R0, Reg::R0, 0));
        Ok(())
    }

    fn eval_unary(&mut self, op: UnaryOp, inner: &Expr, line: u32) -> Result<(), CompileError> {
        match op {
            UnaryOp::Neg => {
                self.eval(inner)?;
                self.asm.emit(Instr::Neg(Reg::R0));
            }
            UnaryOp::BitNot => {
                self.eval(inner)?;
                self.asm.emit(Instr::Not(Reg::R0));
            }
            UnaryOp::LNot => {
                self.eval(inner)?;
                self.emit_bool(Cond::Z);
            }
            UnaryOp::Deref => {
                let ity = decay(self.type_of(inner)?);
                self.eval(inner)?;
                match ity {
                    Type::Ptr(elem) => match *elem {
                        Type::Byte => self.asm.emit(Instr::Ld8(Reg::R0, Reg::R0, 0)),
                        Type::Struct(_) | Type::Array(..) => {} // address-valued
                        _ => self.asm.emit(Instr::Ld(Reg::R0, Reg::R0, 0)),
                    },
                    _ => self.asm.emit(Instr::Ld(Reg::R0, Reg::R0, 0)),
                }
            }
            UnaryOp::Addr => {
                // &function is its address; otherwise an lvalue address.
                if let ExprKind::Ident(n) = &inner.kind {
                    if self.lookup(n).is_none()
                        && (self.g.sema.functions.contains_key(n)
                            || self.g.sema.extern_funcs.contains(n))
                    {
                        self.emit_sym_addr(n, 0);
                        return Ok(());
                    }
                }
                self.eval_lvalue(inner)?;
            }
        }
        let _ = line;
        Ok(())
    }

    /// Materialises a boolean from the current flags: `r0 = cond ? 1 : 0`.
    /// Expects `cmp` already executed OR compares `r0` against 0 first
    /// when `cond` is `Z`/`Nz` for logical not / truthiness.
    fn emit_bool(&mut self, cond: Cond) {
        // For LNot-style uses the caller left the value in r0.
        self.asm.emit(Instr::CmpI(Reg::R0, 0));
        self.emit_bool_from_flags(cond);
    }

    /// `r0 = flags-satisfy-cond ? 1 : 0`; flags must already be set.
    fn emit_bool_from_flags(&mut self, cond: Cond) {
        let done = self.asm.new_label();
        self.asm.emit(Instr::MovRI32(Reg::R0, 1));
        self.asm.jcc(cond, done);
        self.asm.emit(Instr::MovRI32(Reg::R0, 0));
        self.asm.bind(done);
    }

    fn eval_binary(&mut self, op: BinaryOp, l: &Expr, r: &Expr) -> Result<(), CompileError> {
        // Short-circuit forms get control flow.
        if matches!(op, BinaryOp::LAnd | BinaryOp::LOr) {
            let short = self.asm.new_label();
            let done = self.asm.new_label();
            self.eval(l)?;
            self.asm.emit(Instr::CmpI(Reg::R0, 0));
            match op {
                BinaryOp::LAnd => self.asm.jcc(Cond::Z, short),
                BinaryOp::LOr => self.asm.jcc(Cond::Nz, short),
                _ => unreachable!(),
            }
            self.eval(r)?;
            self.emit_bool(Cond::Nz);
            self.asm.jmp(done);
            self.asm.bind(short);
            let v = if op == BinaryOp::LAnd { 0 } else { 1 };
            self.asm.emit(Instr::MovRI32(Reg::R0, v));
            self.asm.bind(done);
            return Ok(());
        }
        let lt = decay(self.type_of(l)?);
        let rt = decay(self.type_of(r)?);
        // Pointer arithmetic scaling: swap `int + ptr` into `ptr + int`.
        let (l, r, lt, rt) =
            if op == BinaryOp::Add && !matches!(lt, Type::Ptr(_)) && matches!(rt, Type::Ptr(_)) {
                (r, l, rt, lt)
            } else {
                (l, r, lt, rt)
            };
        let scale = match (&op, &lt, &rt) {
            (BinaryOp::Add | BinaryOp::Sub, Type::Ptr(elem), t) if !matches!(t, Type::Ptr(_)) => {
                Some(self.g.sema.size_of(elem))
            }
            _ => None,
        };
        let ptr_diff = matches!((&op, &lt, &rt), (BinaryOp::Sub, Type::Ptr(_), Type::Ptr(_)));

        self.eval(l)?;
        self.asm.emit(Instr::Push(Reg::R0));
        self.eval(r)?;
        let scratch = self.scratch();
        if let Some(scale) = scale {
            if scale > 1 {
                self.asm.emit(Instr::MovRI32(scratch, scale as i32));
                self.asm.emit(Instr::Bin(BinOp::Mul, Reg::R0, scratch));
            }
        }
        self.asm.emit(Instr::MovRR(scratch, Reg::R0));
        self.asm.emit(Instr::Pop(Reg::R0));
        match op {
            BinaryOp::Add => self.asm.emit(Instr::Bin(BinOp::Add, Reg::R0, scratch)),
            BinaryOp::Sub => {
                self.asm.emit(Instr::Bin(BinOp::Sub, Reg::R0, scratch));
                if ptr_diff {
                    if let Type::Ptr(elem) = &lt {
                        let size = self.g.sema.size_of(elem);
                        if size > 1 {
                            self.asm.emit(Instr::MovRI32(scratch, size as i32));
                            self.asm.emit(Instr::Bin(BinOp::Div, Reg::R0, scratch));
                        }
                    }
                }
            }
            BinaryOp::Mul => self.asm.emit(Instr::Bin(BinOp::Mul, Reg::R0, scratch)),
            BinaryOp::Div => self.asm.emit(Instr::Bin(BinOp::Div, Reg::R0, scratch)),
            BinaryOp::Mod => self.asm.emit(Instr::Bin(BinOp::Mod, Reg::R0, scratch)),
            BinaryOp::BitAnd => self.asm.emit(Instr::Bin(BinOp::And, Reg::R0, scratch)),
            BinaryOp::BitOr => self.asm.emit(Instr::Bin(BinOp::Or, Reg::R0, scratch)),
            BinaryOp::BitXor => self.asm.emit(Instr::Bin(BinOp::Xor, Reg::R0, scratch)),
            BinaryOp::Shl => self.asm.emit(Instr::Bin(BinOp::Shl, Reg::R0, scratch)),
            BinaryOp::Shr => self.asm.emit(Instr::Bin(BinOp::Shr, Reg::R0, scratch)),
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => {
                self.asm.emit(Instr::Cmp(Reg::R0, scratch));
                let cond = match op {
                    BinaryOp::Eq => Cond::Z,
                    BinaryOp::Ne => Cond::Nz,
                    BinaryOp::Lt => Cond::L,
                    BinaryOp::Le => Cond::Le,
                    BinaryOp::Gt => Cond::G,
                    BinaryOp::Ge => Cond::Ge,
                    _ => unreachable!(),
                };
                self.emit_bool_from_flags(cond);
            }
            BinaryOp::LAnd | BinaryOp::LOr => unreachable!("handled above"),
        }
        Ok(())
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], line: u32) -> Result<(), CompileError> {
        if args.len() > 6 {
            return Err(self.err(line, "calls support at most 6 arguments"));
        }
        // Direct call when the callee is a non-local identifier.
        let direct = match &callee.kind {
            ExprKind::Ident(name) if self.lookup(name).is_none() => {
                let is_var = self.g.sema.global_type(name).is_some();
                if is_var {
                    None // calling through a global variable's value
                } else {
                    Some(name.clone())
                }
            }
            _ => None,
        };
        // Evaluate arguments left-to-right onto the stack.
        for a in args {
            self.eval(a)?;
            self.asm.emit(Instr::Push(Reg::R0));
        }
        if direct.is_none() {
            // Evaluate the callee *after* the arguments so its value can
            // sit in r0 (untouched by the argument pops, which only write
            // r1..r6) until the indirect call issues.
            self.eval(callee)?;
            for i in (0..args.len()).rev() {
                self.asm.emit(Instr::Pop(Reg::from_nibble(1 + i as u8)));
            }
            self.asm.emit(Instr::CallR(Reg::R0));
            return Ok(());
        }
        for i in (0..args.len()).rev() {
            self.asm.emit(Instr::Pop(Reg::from_nibble(1 + i as u8)));
        }
        let name = direct.expect("checked");
        let same_unit = self.g.sema.functions.contains_key(&name);
        if same_unit {
            if let Some(&label) = self.entries.get(&name) {
                // Monolithic text: assembly-time resolution, no relocation.
                self.asm.call_label(label);
                return Ok(());
            }
        }
        // Cross-section or external call: PC-relative relocation with the
        // conventional −4 addend (paper §4.3 footnote 2).
        self.asm.emit_patched(
            Instr::Call32(0),
            1,
            4,
            &name,
            ksplice_asm::REL32_ADDEND,
            true,
        );
        Ok(())
    }

    /// Evaluates the address of an lvalue into `r0`.
    fn eval_lvalue(&mut self, e: &Expr) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(var) = self.lookup(name).cloned() {
                    match var.storage {
                        Storage::Slot(off) => self.asm.emit(Instr::Lea(Reg::R0, Reg::FP, -off)),
                        Storage::Static(sym) => self.emit_sym_addr(&sym, 0),
                    }
                    return Ok(());
                }
                // Global (typed or implicit-extern): its address.
                self.emit_sym_addr(name, 0);
                Ok(())
            }
            ExprKind::Unary(UnaryOp::Deref, inner) => self.eval(inner),
            ExprKind::Index(base, idx) => {
                let bt = decay(self.type_of(base)?);
                let elem_size = match &bt {
                    Type::Ptr(elem) => self.g.sema.size_of(elem),
                    _ => WORD,
                };
                // Base address: pointers evaluate (load), arrays decay via
                // eval which yields their address.
                self.eval(base)?;
                self.asm.emit(Instr::Push(Reg::R0));
                self.eval(idx)?;
                let scratch = self.scratch();
                if elem_size > 1 {
                    self.asm.emit(Instr::MovRI32(scratch, elem_size as i32));
                    self.asm.emit(Instr::Bin(BinOp::Mul, Reg::R0, scratch));
                }
                self.asm.emit(Instr::MovRR(scratch, Reg::R0));
                self.asm.emit(Instr::Pop(Reg::R0));
                self.asm.emit(Instr::Bin(BinOp::Add, Reg::R0, scratch));
                Ok(())
            }
            ExprKind::Field(base, fname) => {
                let Type::Struct(sname) = self.type_of(base)? else {
                    return Err(self.err(e.line, "`.` on non-struct"));
                };
                let (off, _) = self.field(&sname, fname, e.line)?;
                self.eval_lvalue(base)?;
                if off > 0 {
                    self.asm.emit(Instr::AddI(Reg::R0, off as i32));
                }
                Ok(())
            }
            ExprKind::PField(base, fname) => {
                let Type::Ptr(inner) = decay(self.type_of(base)?) else {
                    return Err(self.err(e.line, "`->` on non-pointer"));
                };
                let Type::Struct(sname) = *inner else {
                    return Err(self.err(e.line, "`->` on non-struct-pointer"));
                };
                let (off, _) = self.field(&sname, fname, e.line)?;
                self.eval(base)?;
                if off > 0 {
                    self.asm.emit(Instr::AddI(Reg::R0, off as i32));
                }
                Ok(())
            }
            _ => Err(self.err(e.line, "expression is not an lvalue")),
        }
    }

    /// After `eval_lvalue` left an address in `r0`, load the value.
    fn load_from_address(&mut self, lv: &Expr, ty: &Type) {
        match ty {
            Type::Struct(_) | Type::Array(..) => {} // aggregates stay addresses
            Type::Byte if self.is_byte_memory(lv, ty) => {
                self.asm.emit(Instr::Ld8(Reg::R0, Reg::R0, 0))
            }
            _ => self.asm.emit(Instr::Ld(Reg::R0, Reg::R0, 0)),
        }
    }
}

/// Arrays decay to pointers as values.
fn decay(t: Type) -> Type {
    match t {
        Type::Array(elem, _) => Type::Ptr(elem),
        other => other,
    }
}
