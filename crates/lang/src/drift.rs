//! Seeded kernel-version drift: evolves a source tree the way a distro's
//! tree evolves between release N and N+k.
//!
//! A hot patch is written against the exact tree the running kernel was
//! built from; real fleets run N+k. This module synthesizes that gap
//! deterministically so the rebase pipeline (`ksplice-core`) can be
//! measured against known ground truth: every structural change the
//! generator makes — a rename, a cross-unit function move, a deletion —
//! is recorded in a [`DriftLog`] the evaluator can consult to decide
//! what a *correct* port of each patch would have been.
//!
//! Drift comes in four cumulative levels:
//!
//! | level | new op classes |
//! |-------|----------------|
//! | `D1`  | hunk-context drift (dead statements inserted between live ones) |
//! | `D2`  | static and exported function renames |
//! | `D3`  | inlining shifts, constant tweaks, cross-unit function moves |
//! | `D4`  | function deletions and splits (the manual-port cases) |
//!
//! The generator reuses the PR 5 mutators ([`crate::mutate`]) for the
//! textual noise (insertions, constant tweaks) and implements the
//! tree-wide structural ops (exported renames, moves, deletes, splits)
//! itself, keeping the result compilable: moved functions get `extern`
//! declarations at their old call sites, deleted functions have every
//! call site replaced by a constant, and hooks referencing a deleted
//! function are dropped with it.
//!
//! Output trees are canonical: every `.kc` unit is parsed and
//! pretty-printed, so feeding a canonical tree in yields byte-stable
//! output for untouched units and the same seed always produces the
//! same drifted tree.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ast::{Expr, ExprKind, FileItem, Function, Init, Stmt, StmtKind, Type, Unit};
use crate::build::SourceTree;
use crate::mutate::{apply_mutation, FuzzRng, Mutation, MutatorKind};
use crate::parser::parse_unit;
use crate::pretty::pretty_unit;
use crate::visit::{walk_expr_mut, walk_stmts_exprs_mut};

/// How far the tree has evolved from the patch's base version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftLevel {
    /// Hunk-context drift only: dead statements inserted around live code.
    D1,
    /// D1 plus function renames (static and exported).
    D2,
    /// D2 plus inlining shifts, constant tweaks and cross-unit moves.
    D3,
    /// D3 plus function deletions and splits — the manual-port cases.
    D4,
}

impl DriftLevel {
    /// Every level, shallowest first.
    pub const ALL: [DriftLevel; 4] = [
        DriftLevel::D1,
        DriftLevel::D2,
        DriftLevel::D3,
        DriftLevel::D4,
    ];

    /// Stable name, `"D1"`…`"D4"`.
    pub fn name(self) -> &'static str {
        match self {
            DriftLevel::D1 => "D1",
            DriftLevel::D2 => "D2",
            DriftLevel::D3 => "D3",
            DriftLevel::D4 => "D4",
        }
    }

    /// Inverse of [`DriftLevel::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<DriftLevel> {
        DriftLevel::ALL
            .into_iter()
            .find(|l| l.name().eq_ignore_ascii_case(s))
    }

    /// 1-based depth, for scaling op budgets.
    fn depth(self) -> u64 {
        match self {
            DriftLevel::D1 => 1,
            DriftLevel::D2 => 2,
            DriftLevel::D3 => 3,
            DriftLevel::D4 => 4,
        }
    }
}

impl fmt::Display for DriftLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The mutator class of one drift operation — the axis the evaluation
/// matrix reports auto-port success per.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftClass {
    /// Dead statements inserted between live ones (hunk-context drift).
    ContextDrift,
    /// A unit-local `static` function renamed, all unit refs updated.
    RenameStatic,
    /// An exported function renamed tree-wide.
    RenameExported,
    /// A small callee padded so the optimiser's inline decision flips.
    InlineShift,
    /// A numeric literal nudged (the "constants change between versions"
    /// drift that defeats exact-context matching inside a hunk).
    ConstTweak,
    /// A function moved to a different compilation unit.
    MoveFn,
    /// A function deleted; call sites replaced by a constant.
    DeleteFn,
    /// A function split into a wrapper plus a heavily drifted body.
    SplitFn,
}

impl DriftClass {
    /// Every class, in application order.
    pub const ALL: [DriftClass; 8] = [
        DriftClass::DeleteFn,
        DriftClass::SplitFn,
        DriftClass::MoveFn,
        DriftClass::RenameExported,
        DriftClass::RenameStatic,
        DriftClass::InlineShift,
        DriftClass::ConstTweak,
        DriftClass::ContextDrift,
    ];

    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DriftClass::ContextDrift => "context-drift",
            DriftClass::RenameStatic => "rename-static",
            DriftClass::RenameExported => "rename-exported",
            DriftClass::InlineShift => "inline-shift",
            DriftClass::ConstTweak => "const-tweak",
            DriftClass::MoveFn => "move-fn",
            DriftClass::DeleteFn => "delete-fn",
            DriftClass::SplitFn => "split-fn",
        }
    }
}

impl fmt::Display for DriftClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One applied drift operation, for the ground-truth log.
#[derive(Debug, Clone)]
pub struct DriftOp {
    /// The mutator class.
    pub class: DriftClass,
    /// The unit the op primarily touched.
    pub unit: String,
    /// The function the op touched (empty when not attributable).
    pub func: String,
    /// Human-readable specifics, e.g. `"sys_prctl -> sys_prctl_v42"`.
    pub detail: String,
}

/// What became of a function under drift, per the ground-truth log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FnFate {
    /// Still present; possibly renamed and/or in a different unit.
    /// `unit` is `None` when the function was never moved (same unit).
    Present {
        /// The unit it lives in now, when it moved.
        unit: Option<String>,
        /// Its (possibly new) name.
        name: String,
    },
    /// Deleted outright — a patch touching it cannot auto-port.
    Deleted,
    /// Split into a wrapper plus a drift-scrambled body — a line-based
    /// port is expected to refuse rather than guess.
    Split,
}

/// The ground-truth record of everything [`generate_drift`] did.
///
/// The rebase pipeline never sees this — it is the *evaluator's* answer
/// key: for each function a patch edits, [`DriftLog::fate`] says what a
/// correct port should have targeted (or that no automatic port exists).
#[derive(Debug, Clone, Default)]
pub struct DriftLog {
    /// Seed the drift was generated from.
    pub seed: u64,
    /// Level name, `"D1"`…`"D4"`.
    pub level: String,
    /// Every applied op, in application order.
    pub ops: Vec<DriftOp>,
    /// `(unit, old, new)` for every rename (static and exported).
    pub renames: Vec<(String, String, String)>,
    /// `(func, from_unit, to_unit)` for every cross-unit move.
    pub moves: Vec<(String, String, String)>,
    /// `(unit, func)` for every deletion.
    pub deleted: Vec<(String, String)>,
    /// `(unit, func, body_fn)` for every split: `func` remains as a
    /// wrapper delegating to `body_fn`.
    pub split: Vec<(String, String, String)>,
}

impl DriftLog {
    /// Resolves what became of `func` under this drift.
    pub fn fate(&self, func: &str) -> FnFate {
        if self.deleted.iter().any(|(_, f)| f == func) {
            return FnFate::Deleted;
        }
        if self.split.iter().any(|(_, f, _)| f == func) {
            return FnFate::Split;
        }
        let mut name = func.to_string();
        let mut unit = None;
        if let Some((_, _, to)) = self.moves.iter().find(|(f, _, _)| *f == func) {
            unit = Some(to.clone());
        }
        if let Some((_, _, new)) = self.renames.iter().find(|(_, old, _)| *old == func) {
            name = new.clone();
        }
        FnFate::Present { unit, name }
    }

    /// Ops whose primary unit is `unit`, for per-cell attribution.
    pub fn ops_in_unit<'a>(&'a self, unit: &'a str) -> impl Iterator<Item = &'a DriftOp> {
        self.ops.iter().filter(move |o| o.unit == unit)
    }

    /// Deterministic one-op-per-line rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "drift {} seed={} ops={}", self.level, self.seed, self.ops.len());
        for op in &self.ops {
            let _ = writeln!(s, "  {:<15} {:<22} {}", op.class.name(), op.unit, op.detail);
        }
        s
    }
}

/// Parses and pretty-prints every `.kc` unit, leaving files that do not
/// parse (and non-`.kc` files) untouched. Drift and rebase both operate
/// in this canonical space so formatting differences never masquerade
/// as version drift.
pub fn canonicalize_tree(tree: &SourceTree) -> SourceTree {
    let mut canon = SourceTree::new();
    for (path, src) in tree.iter() {
        if path.ends_with(".kc") {
            if let Ok(unit) = parse_unit(path, src) {
                canon.insert(path, &pretty_unit(&unit));
                continue;
            }
        }
        canon.insert(path, src);
    }
    canon
}

/// Per-level op budgets. Levels are cumulative: D3 includes D2's rename
/// pressure plus its own structural classes, with counts growing so
/// deeper levels are strictly noisier.
struct Budget {
    context: u64,
    rename_static: u64,
    rename_exported: u64,
    inline_shift: u64,
    const_tweak: u64,
    move_fn: u64,
    delete_fn: u64,
    split_fn: u64,
}

impl Budget {
    fn for_level(level: DriftLevel) -> Budget {
        let d = level.depth();
        Budget {
            context: 6 + 4 * d,
            rename_static: if d >= 2 { 2 + 2 * d } else { 0 },
            rename_exported: if d >= 2 { d } else { 0 },
            inline_shift: if d >= 3 { d } else { 0 },
            const_tweak: if d >= 3 { d } else { 0 },
            move_fn: if d >= 3 { d - 1 } else { 0 },
            delete_fn: if d >= 4 { 2 } else { 0 },
            split_fn: if d >= 4 { 2 } else { 0 },
        }
    }
}

/// Evolves `base` to a synthetic "version N+k" at the given drift level.
///
/// `victims` biases the destructive D4 ops (delete/split) toward the
/// given function names — the evaluator passes the set of functions the
/// CVE corpus patches so every D4 run is guaranteed to contain genuine
/// manual-port cells. Functions referenced from assembly units or
/// absent from the tree are skipped. An empty pool disables delete/split.
///
/// Returns the drifted tree (canonical formatting) and the ground-truth
/// log. Same inputs always produce the same outputs. The drifted tree
/// is guaranteed parseable; callers should still build it (the generator
/// is conservative, but compilation is the contract that matters).
pub fn generate_drift(
    base: &SourceTree,
    level: DriftLevel,
    seed: u64,
    victims: &[String],
) -> Result<(SourceTree, DriftLog), String> {
    let mut rng = FuzzRng::new(seed ^ (0xd41f7 * level.depth()));
    let budget = Budget::for_level(level);
    let mut log = DriftLog {
        seed,
        level: level.name().to_string(),
        ..DriftLog::default()
    };

    // Parse every .kc unit once; all ops work on ASTs.
    let mut units: BTreeMap<String, Unit> = BTreeMap::new();
    let mut passthrough: Vec<(String, String)> = Vec::new();
    for (path, src) in base.iter() {
        if path.ends_with(".kc") {
            let unit = parse_unit(path, src).map_err(|e| format!("drift parse: {e}"))?;
            units.insert(path.to_string(), unit);
        } else {
            passthrough.push((path.to_string(), src.to_string()));
        }
    }
    // Names mentioned in assembly or string literals are anchored: the
    // generator never renames, moves or deletes them.
    let anchored = anchored_names(&units, &passthrough);
    // Names already claimed by a structural op (old or new); later ops
    // must not touch them or the log's fate() composition breaks.
    let mut touched: BTreeSet<String> = BTreeSet::new();

    // D4: deletions, then splits (disjoint victims).
    let pool: Vec<String> = victims.to_vec();
    for _ in 0..budget.delete_fn {
        if let Some((unit, func)) = pick_victim(&units, &pool, &anchored, &touched, &mut rng) {
            delete_fn(&mut units, &unit, &func);
            touched.insert(func.clone());
            log.ops.push(DriftOp {
                class: DriftClass::DeleteFn,
                unit: unit.clone(),
                func: func.clone(),
                detail: format!("{func} deleted, call sites constant-folded"),
            });
            log.deleted.push((unit, func));
        }
    }
    for i in 0..budget.split_fn {
        if let Some((unit, func)) = pick_victim(&units, &pool, &anchored, &touched, &mut rng) {
            let body_fn = format!("{func}_body_v{}", 10 + rng.below(90));
            split_fn(units.get_mut(&unit).expect("victim unit"), &func, &body_fn, i);
            touched.insert(func.clone());
            touched.insert(body_fn.clone());
            log.ops.push(DriftOp {
                class: DriftClass::SplitFn,
                unit: unit.clone(),
                func: func.clone(),
                detail: format!("{func} split: wrapper + drifted {body_fn}"),
            });
            log.split.push((unit, func, body_fn));
        }
    }

    // D3: cross-unit moves.
    for _ in 0..budget.move_fn {
        if let Some((from, func, to)) = pick_movable(&units, &anchored, &touched, &mut rng) {
            move_fn(&mut units, &from, &func, &to);
            touched.insert(func.clone());
            log.ops.push(DriftOp {
                class: DriftClass::MoveFn,
                unit: from.clone(),
                func: func.clone(),
                detail: format!("{func}: {from} -> {to}"),
            });
            log.moves.push((func, from, to));
        }
    }

    // D2: exported renames (tree-wide), then static renames (unit-local).
    for _ in 0..budget.rename_exported {
        if let Some((unit, old)) = pick_exported(&units, &anchored, &touched, &mut rng) {
            let new = fresh_name(&units, &old, &mut rng);
            for u in units.values_mut() {
                rename_in_unit(u, &old, &new);
            }
            touched.insert(old.clone());
            touched.insert(new.clone());
            log.ops.push(DriftOp {
                class: DriftClass::RenameExported,
                unit: unit.clone(),
                func: old.clone(),
                detail: format!("{old} -> {new} (exported, tree-wide)"),
            });
            log.renames.push((unit, old, new));
        }
    }
    for _ in 0..budget.rename_static {
        if let Some((unit, old)) = pick_static(&units, &anchored, &touched, &mut rng) {
            let new = fresh_name(&units, &old, &mut rng);
            rename_in_unit(units.get_mut(&unit).expect("static unit"), &old, &new);
            touched.insert(old.clone());
            touched.insert(new.clone());
            log.ops.push(DriftOp {
                class: DriftClass::RenameStatic,
                unit: unit.clone(),
                func: old.clone(),
                detail: format!("{old} -> {new} (static)"),
            });
            log.renames.push((unit, old, new));
        }
    }

    // D3: inline shifts — pad a small callee so the optimiser's decision
    // flips and callers' object code drifts without any source change in
    // the callers themselves.
    for _ in 0..budget.inline_shift {
        if let Some((unit, func)) = pick_small_callee(&units, &touched, &mut rng) {
            let salt = rng.below(1 << 16);
            pad_function(units.get_mut(&unit).expect("callee unit"), &func, salt, 3);
            touched.insert(func.clone());
            log.ops.push(DriftOp {
                class: DriftClass::InlineShift,
                unit: unit.clone(),
                func: func.clone(),
                detail: format!("{func} padded past the inline budget"),
            });
        }
    }

    // D3: constant tweaks (reuses the PR 5 mutator).
    for _ in 0..budget.const_tweak {
        let paths: Vec<String> = units.keys().cloned().collect();
        let path = paths[rng.below(paths.len() as u64) as usize].clone();
        let m = Mutation {
            kind: MutatorKind::TweakConst,
            site: rng.next_u64(),
            payload: rng.next_u64() as i64,
        };
        let unit = units.get_mut(&path).expect("tweak unit");
        let before = unit.clone();
        if apply_mutation(unit, &m).is_ok() {
            let func = changed_function(&before, unit).unwrap_or_default();
            log.ops.push(DriftOp {
                class: DriftClass::ConstTweak,
                unit: path,
                func: func.clone(),
                detail: format!("literal nudged in {}", nonempty(&func)),
            });
        }
    }

    // All levels: hunk-context drift (reuses the PR 5 insert mutator,
    // whose synthesized statements are dead at runtime but fully
    // compiled — they shift line layout without changing behaviour).
    for _ in 0..budget.context {
        let paths: Vec<String> = units.keys().cloned().collect();
        let path = paths[rng.below(paths.len() as u64) as usize].clone();
        let m = Mutation {
            kind: MutatorKind::InsertStmt,
            site: rng.next_u64(),
            payload: rng.next_u64() as i64,
        };
        let unit = units.get_mut(&path).expect("context unit");
        let before = unit.clone();
        if apply_mutation(unit, &m).is_ok() {
            let func = changed_function(&before, unit).unwrap_or_default();
            log.ops.push(DriftOp {
                class: DriftClass::ContextDrift,
                unit: path,
                func: func.clone(),
                detail: format!("dead stmt inserted in {}", nonempty(&func)),
            });
        }
    }

    // Reassemble: canonical pretty-print of every unit.
    let mut tree = SourceTree::new();
    for (path, unit) in &units {
        tree.insert(path, &pretty_unit(unit));
    }
    for (path, src) in &passthrough {
        tree.insert(path, src);
    }
    Ok((tree, log))
}

fn nonempty(f: &str) -> &str {
    if f.is_empty() {
        "file scope"
    } else {
        f
    }
}

/// Names that must not be structurally drifted: anything mentioned in an
/// assembly unit (symbol references resolved at link time by name),
/// anything mentioned in a string literal (kallsyms-style lookups), and
/// the entry points.
fn anchored_names(units: &BTreeMap<String, Unit>, passthrough: &[(String, String)]) -> BTreeSet<String> {
    let mut anchored: BTreeSet<String> = BTreeSet::new();
    anchored.insert("main".to_string());
    anchored.insert("init".to_string());
    let mut words = String::new();
    for (path, src) in passthrough {
        if path.ends_with(".ks") || path.ends_with(".kh") {
            words.push_str(src);
            words.push('\n');
        }
    }
    for unit in units.values() {
        for item in &unit.items {
            if let FileItem::Func(f) = item {
                let mut scan = |e: &Expr| {
                    if let ExprKind::Str(bytes) = &e.kind {
                        if let Ok(s) = std::str::from_utf8(bytes) {
                            words.push_str(s);
                            words.push('\n');
                        }
                    }
                };
                for s in &f.body {
                    walk_stmt_exprs(s, &mut scan);
                }
            }
        }
    }
    let names: BTreeSet<&str> = units
        .values()
        .flat_map(|u| u.functions().map(|f| f.name.as_str()))
        .collect();
    for name in names {
        if contains_word(&words, name) {
            anchored.insert(name.to_string());
        }
    }
    anchored
}

fn contains_word(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack.as_bytes()[at - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[at - 1] != b'_';
        let end = at + word.len();
        let after_ok = end >= haystack.len()
            || !haystack.as_bytes()[end].is_ascii_alphanumeric() && haystack.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Read-only pre-order expression walk over one statement.
fn walk_stmt_exprs(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    fn walk_e(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        match &e.kind {
            ExprKind::Unary(_, x) => walk_e(x, f),
            ExprKind::Binary(_, l, r) => {
                walk_e(l, f);
                walk_e(r, f);
            }
            ExprKind::Call { callee, args } => {
                walk_e(callee, f);
                for a in args {
                    walk_e(a, f);
                }
            }
            ExprKind::Index(b, i) => {
                walk_e(b, f);
                walk_e(i, f);
            }
            ExprKind::Field(b, _) | ExprKind::PField(b, _) => walk_e(b, f),
            ExprKind::Num(_) | ExprKind::Str(_) | ExprKind::Ident(_) | ExprKind::Sizeof(_) => {}
        }
    }
    match &stmt.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                walk_e(e, f)
            }
        }
        StmtKind::Expr(e) => walk_e(e, f),
        StmtKind::Assign { target, value } => {
            walk_e(target, f);
            walk_e(value, f);
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            walk_e(cond, f);
            for s in then_body {
                walk_stmt_exprs(s, f);
            }
            for s in else_body {
                walk_stmt_exprs(s, f);
            }
        }
        StmtKind::While { cond, body } => {
            walk_e(cond, f);
            for s in body {
                walk_stmt_exprs(s, f);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                walk_stmt_exprs(s, f);
            }
            if let Some(e) = cond {
                walk_e(e, f);
            }
            if let Some(s) = step {
                walk_stmt_exprs(s, f);
            }
            for s in body {
                walk_stmt_exprs(s, f);
            }
        }
        StmtKind::Return(Some(e)) => walk_e(e, f),
        StmtKind::Block(body) => {
            for s in body {
                walk_stmt_exprs(s, f);
            }
        }
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
    }
}

/// The function whose body differs between `before` and `after`, if any.
fn changed_function(before: &Unit, after: &Unit) -> Option<String> {
    for (b, a) in before.functions().zip(after.functions()) {
        if b.name == a.name && b.body != a.body {
            return Some(b.name.clone());
        }
    }
    None
}

/// A name of the form `<old>_vNN` not yet defined anywhere in the tree.
fn fresh_name(units: &BTreeMap<String, Unit>, old: &str, rng: &mut FuzzRng) -> String {
    let all: BTreeSet<&str> = units
        .values()
        .flat_map(|u| {
            u.items.iter().filter_map(|i| match i {
                FileItem::Func(f) => Some(f.name.as_str()),
                FileItem::Global(g) => Some(g.name.as_str()),
                _ => None,
            })
        })
        .collect();
    loop {
        let cand = format!("{old}_v{}", 10 + rng.below(90));
        if !all.contains(cand.as_str()) {
            return cand;
        }
    }
}

/// Picks a victim from the pool: a function that exists, is not anchored
/// in assembly/strings, and is not already claimed by another op.
fn pick_victim(
    units: &BTreeMap<String, Unit>,
    pool: &[String],
    anchored: &BTreeSet<String>,
    touched: &BTreeSet<String>,
    rng: &mut FuzzRng,
) -> Option<(String, String)> {
    let candidates: Vec<(String, String)> = units
        .iter()
        .flat_map(|(path, u)| {
            u.functions()
                .filter(|f| {
                    pool.iter().any(|v| v == &f.name)
                        && !anchored.contains(&f.name)
                        && !touched.contains(&f.name)
                        && !is_hooked(u, &f.name)
                })
                .map(move |f| (path.clone(), f.name.clone()))
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.below(candidates.len() as u64) as usize].clone())
}

fn is_hooked(unit: &Unit, name: &str) -> bool {
    unit.items
        .iter()
        .any(|i| matches!(i, FileItem::Hook { func, .. } if func == name))
}

/// Picks an exported, unanchored, unclaimed function for a tree-wide
/// rename.
fn pick_exported(
    units: &BTreeMap<String, Unit>,
    anchored: &BTreeSet<String>,
    touched: &BTreeSet<String>,
    rng: &mut FuzzRng,
) -> Option<(String, String)> {
    let candidates: Vec<(String, String)> = units
        .iter()
        .flat_map(|(path, u)| {
            u.functions()
                .filter(|f| {
                    !f.is_static && !anchored.contains(&f.name) && !touched.contains(&f.name)
                })
                .map(move |f| (path.clone(), f.name.clone()))
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.below(candidates.len() as u64) as usize].clone())
}

/// Picks a static function for a unit-local rename. Statics whose name
/// collides across units are fine — the rename stays inside one unit,
/// exactly like the PR 5 mutator.
fn pick_static(
    units: &BTreeMap<String, Unit>,
    anchored: &BTreeSet<String>,
    touched: &BTreeSet<String>,
    rng: &mut FuzzRng,
) -> Option<(String, String)> {
    let candidates: Vec<(String, String)> = units
        .iter()
        .flat_map(|(path, u)| {
            u.functions()
                .filter(|f| {
                    f.is_static && !anchored.contains(&f.name) && !touched.contains(&f.name)
                })
                .map(move |f| (path.clone(), f.name.clone()))
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.below(candidates.len() as u64) as usize].clone())
}

/// Picks a small function (≤ 3 top-level statements) for inline-shift
/// padding.
fn pick_small_callee(
    units: &BTreeMap<String, Unit>,
    touched: &BTreeSet<String>,
    rng: &mut FuzzRng,
) -> Option<(String, String)> {
    let candidates: Vec<(String, String)> = units
        .iter()
        .flat_map(|(path, u)| {
            u.functions()
                .filter(|f| f.body.len() <= 3 && !f.body.is_empty() && !touched.contains(&f.name))
                .map(move |f| (path.clone(), f.name.clone()))
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.below(candidates.len() as u64) as usize].clone())
}

/// Renames `old` to `new` inside one unit: definition, call sites,
/// identifier references (ops tables), hooks and extern declarations.
/// Mirrors the PR 5 rename mutator, extended to `extern` items.
fn rename_in_unit(unit: &mut Unit, old: &str, new: &str) {
    let mut rename = |e: &mut Expr| {
        if let ExprKind::Ident(n) = &mut e.kind {
            if n == old {
                *n = new.to_string();
            }
        }
    };
    for item in &mut unit.items {
        match item {
            FileItem::Func(func) => {
                if func.name == old {
                    func.name = new.to_string();
                }
                walk_stmts_exprs_mut(&mut func.body, &mut rename);
            }
            FileItem::Global(g) => match &mut g.init {
                Some(Init::Scalar(e)) => walk_expr_mut(e, &mut rename),
                Some(Init::List(items)) => {
                    for e in items {
                        walk_expr_mut(e, &mut rename);
                    }
                }
                None => {}
            },
            FileItem::Hook { func, .. } => {
                if func == old {
                    *func = new.to_string();
                }
            }
            FileItem::Extern { name, .. } => {
                if name == old {
                    *name = new.to_string();
                }
            }
            FileItem::Struct(_) => {}
        }
    }
}

/// Free names referenced by a function body (identifiers that are not
/// parameters or locals declared anywhere in the body — conservative:
/// nested scopes are flattened).
fn free_names(f: &Function) -> BTreeSet<String> {
    let mut bound: BTreeSet<String> = f.params.iter().map(|(n, _)| n.clone()).collect();
    let mut decls: Vec<String> = Vec::new();
    collect_decls(&f.body, &mut decls);
    bound.extend(decls);
    let mut free = BTreeSet::new();
    for s in &f.body {
        walk_stmt_exprs(s, &mut |e| {
            if let ExprKind::Ident(n) = &e.kind {
                if !bound.contains(n) {
                    free.insert(n.clone());
                }
            }
        });
    }
    free
}

fn collect_decls(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Decl { name, .. } => out.push(name.clone()),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_decls(then_body, out);
                collect_decls(else_body, out);
            }
            StmtKind::While { body, .. } => collect_decls(body, out),
            StmtKind::For { init, body, .. } => {
                if let Some(s) = init {
                    if let StmtKind::Decl { name, .. } = &s.kind {
                        out.push(name.clone());
                    }
                }
                collect_decls(body, out);
            }
            StmtKind::Block(body) => collect_decls(body, out),
            _ => {}
        }
    }
}

/// Where a name is defined, tree-wide: `(unit, is_static, is_func)`.
fn definition_sites(units: &BTreeMap<String, Unit>) -> BTreeMap<String, (String, bool, bool)> {
    let mut defs = BTreeMap::new();
    for (path, u) in units {
        for item in &u.items {
            match item {
                FileItem::Func(f) => {
                    defs.entry(f.name.clone())
                        .or_insert((path.clone(), f.is_static, true));
                }
                FileItem::Global(g) => {
                    defs.entry(g.name.clone())
                        .or_insert((path.clone(), g.is_static, false));
                }
                _ => {}
            }
        }
    }
    defs
}

/// Picks `(from_unit, func, to_unit)` for a safe cross-unit move: the
/// function must be exported, unanchored, unhooked, reference only
/// exported functions or header-declared names, and its name must be
/// free in the target.
fn pick_movable(
    units: &BTreeMap<String, Unit>,
    anchored: &BTreeSet<String>,
    touched: &BTreeSet<String>,
    rng: &mut FuzzRng,
) -> Option<(String, String, String)> {
    let defs = definition_sites(units);
    let mut candidates: Vec<(String, String)> = Vec::new();
    for (path, u) in units {
        for f in u.functions() {
            if f.is_static
                || f.is_inline
                || anchored.contains(&f.name)
                || touched.contains(&f.name)
                || is_hooked(u, &f.name)
            {
                continue;
            }
            // Every free name must resolve to a non-static *function*
            // definition: an `extern` declaration in the destination
            // unit can re-import a call, but it is untyped, so a moved
            // body referencing a struct or array global would lose the
            // type and stop compiling. Header-declared names (absent
            // from `defs`) are visible everywhere and survive the move.
            let movable = free_names(f).iter().all(|n| match defs.get(n) {
                Some((_, is_static, is_func)) => !is_static && *is_func,
                None => true,
            });
            if movable {
                candidates.push((path.clone(), f.name.clone()));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (from, func) = candidates[rng.below(candidates.len() as u64) as usize].clone();
    let targets: Vec<String> = units
        .iter()
        .filter(|(p, u)| {
            **p != from
                && p.ends_with(".kc")
                && !u.items.iter().any(|i| match i {
                    FileItem::Func(f) => f.name == func,
                    FileItem::Global(g) => g.name == func,
                    FileItem::Extern { name, .. } => *name == func,
                    _ => false,
                })
        })
        .map(|(p, _)| p.clone())
        .collect();
    if targets.is_empty() {
        return None;
    }
    let to = targets[rng.below(targets.len() as u64) as usize].clone();
    Some((from, func, to))
}

/// Moves `func` from `from` to `to`, inserting `extern` declarations on
/// both sides as needed so every unit still resolves.
fn move_fn(units: &mut BTreeMap<String, Unit>, from: &str, func: &str, to: &str) {
    let defs = definition_sites(units);
    let from_unit = units.get_mut(from).expect("move source unit");
    let idx = from_unit
        .items
        .iter()
        .position(|i| matches!(i, FileItem::Func(f) if f.name == func))
        .expect("moved function present");
    let item = from_unit.items.remove(idx);
    let FileItem::Func(f) = &item else {
        unreachable!("filtered to function");
    };
    // The old unit keeps calling it cross-unit.
    ensure_extern(from_unit, func, true);
    // The new unit needs externs for the function's free names it does
    // not define itself.
    let needed: Vec<(String, bool)> = free_names(f)
        .into_iter()
        .filter_map(|n| {
            defs.get(&n)
                .filter(|(def_unit, _, _)| def_unit != to)
                .map(|(_, _, is_func)| (n, *is_func))
        })
        .collect();
    let to_unit = units.get_mut(to).expect("move target unit");
    for (name, is_func) in needed {
        ensure_extern(to_unit, &name, is_func);
    }
    to_unit.items.push(item);
}

/// Adds an `extern` declaration at the top of the unit unless the name
/// is already defined or declared there.
fn ensure_extern(unit: &mut Unit, name: &str, is_func: bool) {
    let present = unit.items.iter().any(|i| match i {
        FileItem::Func(f) => f.name == name,
        FileItem::Global(g) => g.name == name,
        FileItem::Extern { name: n, .. } => n == name,
        _ => false,
    });
    if !present {
        unit.items.insert(
            0,
            FileItem::Extern {
                name: name.to_string(),
                is_func,
                line: 1,
            },
        );
    }
}

/// Deletes `func` from `unit`, replacing every call site tree-wide with
/// the constant `0` and dropping any hook that registered it (the way a
/// later kernel version retires a helper).
fn delete_fn(units: &mut BTreeMap<String, Unit>, unit: &str, func: &str) {
    let home = units.get_mut(unit).expect("delete unit");
    home.items
        .retain(|i| !matches!(i, FileItem::Func(f) if f.name == func));
    home.items
        .retain(|i| !matches!(i, FileItem::Hook { func: h, .. } if h == func));
    for u in units.values_mut() {
        let erase = &mut |e: &mut Expr| {
            let is_call_to = match &e.kind {
                ExprKind::Call { callee, .. } => {
                    matches!(&callee.kind, ExprKind::Ident(n) if n == func)
                }
                ExprKind::Ident(n) => n == func,
                _ => false,
            };
            if is_call_to {
                *e = Expr::num(0, e.line);
            }
        };
        for item in &mut u.items {
            match item {
                FileItem::Func(f) => walk_stmts_exprs_mut(&mut f.body, erase),
                FileItem::Global(g) => match &mut g.init {
                    Some(Init::Scalar(e)) => walk_expr_mut(e, erase),
                    Some(Init::List(items)) => {
                        for e in items {
                            walk_expr_mut(e, erase);
                        }
                    }
                    None => {}
                },
                _ => {}
            }
        }
        u.items
            .retain(|i| !matches!(i, FileItem::Extern { name, .. } if name == func));
    }
}

/// Splits `func`: its body moves (scrambled with interleaved dead
/// statements) into `body_fn`, and `func` becomes a thin wrapper. All
/// callers keep calling `func`, so the tree's behaviour is preserved —
/// but a line-based patch against the old body can no longer find a
/// contiguous match anywhere.
fn split_fn(unit: &mut Unit, func: &str, body_fn: &str, salt: u64) {
    let idx = unit
        .items
        .iter()
        .position(|i| matches!(i, FileItem::Func(f) if f.name == func))
        .expect("split function present");
    let FileItem::Func(orig) = &unit.items[idx] else {
        unreachable!("filtered to function");
    };
    let mut body = Function {
        name: body_fn.to_string(),
        params: orig.params.clone(),
        body: orig.body.clone(),
        is_static: orig.is_static,
        is_inline: false,
        line: orig.line,
    };
    interleave_dead(&mut body.body, salt);
    let call = Expr::new(
        ExprKind::Call {
            callee: Box::new(Expr::new(ExprKind::Ident(body_fn.to_string()), 1)),
            args: orig
                .params
                .iter()
                .map(|(n, _)| Expr::new(ExprKind::Ident(n.clone()), 1))
                .collect(),
        },
        1,
    );
    let wrapper = Function {
        name: func.to_string(),
        params: orig.params.clone(),
        body: vec![Stmt::new(StmtKind::Return(Some(call)), 1)],
        is_static: orig.is_static,
        is_inline: false,
        line: orig.line,
    };
    unit.items[idx] = FileItem::Func(wrapper);
    unit.items.insert(idx + 1, FileItem::Func(body));
}

/// Inserts a self-contained dead statement between every pair of
/// consecutive statements, recursively — the "heavily drifted" half of a
/// split.
fn interleave_dead(stmts: &mut Vec<Stmt>, salt: u64) {
    let mut counter = salt << 8;
    interleave_dead_inner(stmts, &mut counter);
}

fn interleave_dead_inner(stmts: &mut Vec<Stmt>, counter: &mut u64) {
    for s in stmts.iter_mut() {
        match &mut s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                interleave_dead_inner(then_body, counter);
                interleave_dead_inner(else_body, counter);
            }
            StmtKind::While { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::Block(body) => interleave_dead_inner(body, counter),
            _ => {}
        }
    }
    let mut pos = stmts.len();
    while pos > 0 {
        *counter += 1;
        stmts.insert(pos, dead_stmt(*counter));
        pos -= 1;
    }
}

/// A dead-but-compiled statement needing no ambient scope: a block with
/// its own local.
fn dead_stmt(n: u64) -> Stmt {
    let name = format!("drift{n}");
    let ident = Expr::new(ExprKind::Ident(name.clone()), 1);
    Stmt::new(
        StmtKind::Block(vec![
            Stmt::new(
                StmtKind::Decl {
                    name,
                    ty: Type::Int,
                    is_static: false,
                    init: Some(Expr::num((n % 251) as i64, 1)),
                },
                1,
            ),
            Stmt::new(
                StmtKind::Assign {
                    target: ident.clone(),
                    value: Expr::new(
                        ExprKind::Binary(
                            crate::ast::BinaryOp::BitXor,
                            Box::new(ident),
                            Box::new(Expr::num(1, 1)),
                        ),
                        1,
                    ),
                },
                1,
            ),
        ]),
        1,
    )
}

/// Pads a function with `k` dead statements at the front — enough to
/// push a small callee past the optimiser's inline budget.
fn pad_function(unit: &mut Unit, func: &str, salt: u64, k: usize) {
    for item in &mut unit.items {
        if let FileItem::Func(f) = item {
            if f.name == func {
                for i in 0..k {
                    f.body.insert(i, dead_stmt((salt << 4) + i as u64 + 1));
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_tree;
    use crate::Options;

    fn tree() -> SourceTree {
        let mut t = SourceTree::new();
        t.insert(
            "a.kc",
            "static int helper(int x) { return x + 1; }\n\
             int alpha(int a) { int v; v = helper(a); return v * 2; }\n\
             int beta(int b) { if (b > 3) { return alpha(b); } return 0; }\n",
        );
        t.insert("b.kc", "int gamma(int g) { return g + 7; }\n");
        canonicalize_tree(&t)
    }

    #[test]
    fn drift_is_deterministic() {
        let base = tree();
        let (t1, l1) = generate_drift(&base, DriftLevel::D2, 7, &[]).unwrap();
        let (t2, l2) = generate_drift(&base, DriftLevel::D2, 7, &[]).unwrap();
        let flat1: Vec<(String, String)> =
            t1.iter().map(|(a, b)| (a.into(), b.into())).collect();
        let flat2: Vec<(String, String)> =
            t2.iter().map(|(a, b)| (a.into(), b.into())).collect();
        assert_eq!(flat1, flat2);
        assert_eq!(l1.render(), l2.render());
    }

    #[test]
    fn drifted_tree_compiles_at_every_level() {
        let base = tree();
        for level in DriftLevel::ALL {
            let (t, log) = generate_drift(&base, level, 11, &["beta".to_string()]).unwrap();
            build_tree(&t, &Options::distro()).unwrap_or_else(|e| {
                panic!("{level}: drifted tree fails to build: {e}\n{}", log.render())
            });
            build_tree(&t, &Options::pre_post()).unwrap();
        }
    }

    #[test]
    fn d4_deletes_or_splits_the_victim() {
        let base = tree();
        let (_, log) =
            generate_drift(&base, DriftLevel::D4, 3, &["beta".to_string()]).unwrap();
        match log.fate("beta") {
            FnFate::Deleted | FnFate::Split => {}
            other => panic!("victim survived untouched: {other:?}"),
        }
    }

    #[test]
    fn fate_follows_renames() {
        let base = tree();
        let (_, log) = generate_drift(&base, DriftLevel::D2, 5, &[]).unwrap();
        for (_, old, new) in &log.renames {
            assert_eq!(
                log.fate(old),
                FnFate::Present {
                    unit: None,
                    name: new.clone()
                }
            );
        }
    }

    #[test]
    fn level_parse_roundtrip() {
        for l in DriftLevel::ALL {
            assert_eq!(DriftLevel::parse(l.name()), Some(l));
        }
        assert_eq!(DriftLevel::parse("d3"), Some(DriftLevel::D3));
        assert_eq!(DriftLevel::parse("D9"), None);
    }
}
