//! The build driver — `kbuild` for `kc` trees.
//!
//! A [`SourceTree`] is a whole kernel's source: headers under `include/`
//! (shared struct definitions and typed global declarations), `.kc` C
//! units and `.ks` assembly units. [`build_tree`] compiles every unit
//! deterministically and returns the build's [`ObjectSet`] — the artifact
//! `ksplice-create` produces twice (pre and post) and diffs (paper §3.2,
//! Figure 1).

use std::collections::BTreeMap;

use ksplice_object::{Object, ObjectSet};

use crate::asmfile::assemble_unit;
use crate::cache::{options_fingerprint, BuildCache, BuildStats, Fingerprint};
use crate::ast::Unit;
use crate::codegen::gen_unit;
use crate::fold::fold_unit;
use crate::inline::inline_unit;
use crate::parser::parse_unit;
use crate::sema::{check_unit_with, HeaderContext};
use crate::{CompileError, Options};

/// An in-memory kernel source tree, keyed by path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceTree {
    files: BTreeMap<String, String>,
}

impl SourceTree {
    /// An empty tree.
    pub fn new() -> SourceTree {
        SourceTree::default()
    }

    /// Adds or replaces a file.
    pub fn insert(&mut self, path: &str, contents: &str) {
        self.files.insert(path.to_string(), contents.to_string());
    }

    /// Reads a file.
    pub fn get(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(|s| s.as_str())
    }

    /// Replaces a file's contents, returning false if absent.
    pub fn set(&mut self, path: &str, contents: String) -> bool {
        match self.files.get_mut(path) {
            Some(slot) => {
                *slot = contents;
                true
            }
            None => false,
        }
    }

    /// Removes a file.
    pub fn remove(&mut self, path: &str) -> Option<String> {
        self.files.remove(path)
    }

    /// Iterates `(path, contents)` in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// All paths, sorted.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(|k| k.as_str())
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the tree has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// True if `path` is a header (`include/…`, `.kh`).
    pub fn is_header(path: &str) -> bool {
        path.ends_with(".kh")
    }
}

impl FromIterator<(String, String)> for SourceTree {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> SourceTree {
        SourceTree {
            files: iter.into_iter().collect(),
        }
    }
}

/// Compiles a single `.kc` unit with no shared headers.
pub fn compile_unit(name: &str, src: &str, opt: &Options) -> Result<Object, CompileError> {
    compile_unit_with(name, src, opt, &HeaderContext::default())
}

/// Compiles a single `.kc` unit against header declarations.
pub fn compile_unit_with(
    name: &str,
    src: &str,
    opt: &Options,
    headers: &HeaderContext,
) -> Result<Object, CompileError> {
    let unit = parse_unit(name, src)?;
    compile_parsed(unit, opt, headers)
}

fn compile_parsed(
    mut unit: Unit,
    opt: &Options,
    headers: &HeaderContext,
) -> Result<Object, CompileError> {
    let sema = check_unit_with(&unit, headers)?;
    if opt.opt_level >= 1 {
        fold_unit(&mut unit, &sema);
        inline_unit(&mut unit, opt);
    }
    // Re-derive name tables after inlining may have dropped functions.
    let sema = check_unit_with(&unit, headers)?;
    gen_unit(&unit, &sema, opt)
}

/// Builds every unit of a tree, returning one object per `.kc`/`.ks`
/// file.
pub fn build_tree(tree: &SourceTree, opt: &Options) -> Result<ObjectSet, CompileError> {
    build_tree_cached(tree, opt, &BuildCache::new()).map(|(set, _)| set)
}

/// Fingerprints every header a `.kc` unit can see: the tree's `.kh`
/// files, folded in sorted path order.
fn headers_fingerprint(tree: &SourceTree) -> u64 {
    let mut fp = Fingerprint::new();
    for (path, src) in tree.iter() {
        if SourceTree::is_header(path) {
            fp.str_field(path).str_field(src);
        }
    }
    fp.finish()
}

/// The content-addressed cache key of one compilation unit: its path and
/// source, the headers it can see (`.ks` assembly sees none), and the
/// build [`Options`].
fn unit_fingerprint(path: &str, src: &str, opt_fp: u64, headers_fp: Option<u64>) -> u64 {
    let mut fp = Fingerprint::new();
    fp.u64_field(opt_fp);
    if let Some(h) = headers_fp {
        fp.u64_field(h);
    }
    fp.str_field(path).str_field(src);
    fp.finish()
}

/// [`build_tree`] through a shared [`BuildCache`]: units whose
/// fingerprint (source + visible headers + options) is cached are served
/// without recompiling, and are byte-identical to a cold build. Returns
/// the built set and this build's cache traffic.
///
/// Headers are parsed lazily — a fully warm build never re-parses them.
pub fn build_tree_cached(
    tree: &SourceTree,
    opt: &Options,
    cache: &BuildCache,
) -> Result<(ObjectSet, BuildStats), CompileError> {
    let opt_fp = options_fingerprint(opt);
    let headers_fp = headers_fingerprint(tree);
    let mut headers: Option<HeaderContext> = None;
    let mut stats = BuildStats::default();
    let mut set = ObjectSet::new();
    for (path, src) in tree.iter() {
        if SourceTree::is_header(path) {
            continue;
        }
        let (key, is_asm) = if path.ends_with(".ks") {
            (unit_fingerprint(path, src, opt_fp, None), true)
        } else if path.ends_with(".kc") {
            (unit_fingerprint(path, src, opt_fp, Some(headers_fp)), false)
        } else {
            continue; // READMEs, configs, etc.
        };
        if let Some(obj) = cache.lookup(key) {
            stats.hits += 1;
            set.insert(obj);
            continue;
        }
        stats.misses += 1;
        let obj = if is_asm {
            assemble_unit(path, src, opt)?
        } else {
            let ctx = match &headers {
                Some(ctx) => ctx,
                None => headers.insert(parse_headers(tree)?),
            };
            compile_unit_with(path, src, opt, ctx)?
        };
        stats.evictions += cache.store(key, obj.clone());
        set.insert(obj);
    }
    Ok((set, stats))
}

/// The whole-image cache key: the build [`Options`] plus the
/// fingerprint of every source file, folded in sorted path order. Two
/// trees with identical contents under identical options key the same
/// image.
fn image_fingerprint(tree: &SourceTree, opt_fp: u64) -> u64 {
    let mut fp = Fingerprint::new();
    fp.u64_field(opt_fp);
    for (path, src) in tree.iter() {
        fp.str_field(path).str_field(src);
    }
    fp.finish()
}

/// [`build_tree_cached`] behind a whole-image memo: when the *entire
/// tree* (every source file plus options) fingerprints to an image
/// built before, the finished [`ObjectSet`] is returned without even
/// consulting the per-unit cache. `ksplice-create` rebuilds the same
/// pre tree for every update it packages, and the evaluation driver
/// rebuilds the same distro tree per corpus entry — for those callers
/// the whole build collapses to one lookup.
///
/// An image hit reports [`BuildStats`] as one unit-hit per object (and
/// zero misses), exactly what a fully warm per-unit build would report,
/// so cache accounting downstream is unchanged. A miss falls through to
/// the per-unit path and stores the finished image.
pub fn build_tree_image_cached(
    tree: &SourceTree,
    opt: &Options,
    cache: &BuildCache,
) -> Result<(ObjectSet, BuildStats), CompileError> {
    let key = image_fingerprint(tree, options_fingerprint(opt));
    if let Some(set) = cache.lookup_image(key) {
        let stats = BuildStats {
            hits: set.len() as u64,
            ..BuildStats::default()
        };
        return Ok((set, stats));
    }
    let (set, stats) = build_tree_cached(tree, opt, cache)?;
    cache.store_image(key, set.clone());
    Ok((set, stats))
}

/// Computes, per compilation unit, which functions the optimiser inlines
/// where under the given options — the measurement behind the paper's
/// §6.3 inlining statistics (20 of 64 patches modify an inlined function;
/// only 4 say `inline`).
pub fn tree_inline_report(
    tree: &SourceTree,
    opt: &Options,
) -> Result<std::collections::BTreeMap<String, crate::inline::InlineReport>, CompileError> {
    let headers = parse_headers(tree)?;
    let mut out = std::collections::BTreeMap::new();
    for (path, src) in tree.iter() {
        if SourceTree::is_header(path) || !path.ends_with(".kc") {
            continue;
        }
        let mut unit = parse_unit(path, src)?;
        let sema = check_unit_with(&unit, &headers)?;
        if opt.opt_level >= 1 {
            fold_unit(&mut unit, &sema);
        }
        out.insert(path.to_string(), crate::inline::inline_report(&unit, opt));
    }
    Ok(out)
}

/// Parses a tree and returns each unit's function definitions (name,
/// `inline`-declared flag), for corpus statistics.
pub fn tree_function_index(
    tree: &SourceTree,
) -> Result<std::collections::BTreeMap<String, Vec<(String, bool)>>, CompileError> {
    let mut out = std::collections::BTreeMap::new();
    for (path, src) in tree.iter() {
        if SourceTree::is_header(path) || !path.ends_with(".kc") {
            continue;
        }
        let unit = parse_unit(path, src)?;
        out.insert(
            path.to_string(),
            unit.functions()
                .map(|f| (f.name.clone(), f.is_inline))
                .collect(),
        );
    }
    Ok(out)
}

/// Parses the tree's headers into a shared [`HeaderContext`].
pub fn parse_headers(tree: &SourceTree) -> Result<HeaderContext, CompileError> {
    let mut units = Vec::new();
    for (path, src) in tree.iter() {
        if SourceTree::is_header(path) {
            units.push(parse_unit(path, src)?);
        }
    }
    HeaderContext::from_units(&units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let mut tree = SourceTree::new();
        tree.insert(
            "include/sched.kh",
            "struct task { int pid; struct task *next; };",
        );
        tree.insert(
            "kernel/sched.kc",
            "struct task *runqueue;\
             int pick_next() { if (runqueue) { return runqueue->pid; } return 0; }",
        );
        tree.insert(
            "kernel/sys.kc",
            "int uptime;\
             int sys_uptime() { return uptime; }",
        );
        let a = build_tree(&tree, &Options::distro()).unwrap();
        let b = build_tree(&tree, &Options::distro()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn function_sections_gives_per_function_text() {
        let mut tree = SourceTree::new();
        tree.insert(
            "fs/open.kc",
            "int a() { return 1; } int b() { return a() + 1; }",
        );
        let set = build_tree(&tree, &Options::pre_post()).unwrap();
        let obj = set.get("fs/open.kc").unwrap();
        assert!(obj.section_by_name(".text.a").is_some());
        assert!(obj.section_by_name(".text.b").is_some());
        assert!(obj.section_by_name(".text").is_none());
    }

    #[test]
    fn monolithic_build_gives_single_text() {
        let mut tree = SourceTree::new();
        tree.insert(
            "fs/open.kc",
            "int a(int x) { if (x > 3) { return 1; } return 2; } int b() { return a(9) + 1; }",
        );
        let set = build_tree(&tree, &Options::distro()).unwrap();
        let obj = set.get("fs/open.kc").unwrap();
        assert!(obj.section_by_name(".text").is_some());
        assert!(obj.section_by_name(".text.a").is_none());
        // Both function symbols exist within .text.
        assert!(obj.symbol_by_name("a").is_some());
        assert!(obj.symbol_by_name("b").is_some());
    }

    #[test]
    fn one_line_change_shifts_monolithic_text() {
        // The §3.1 phenomenon: changing one function perturbs bytes across
        // the unit's single .text (relative jumps, label offsets).
        let base = "int f(int x) { if (x) { return 1; } return 2; }\
                    int g(int y) { return f(y) + f(y + 1); }";
        let patched = "int f(int x) { if (x) { if (x > 2) { return 3; } return 1; } return 2; }\
                       int g(int y) { return f(y) + f(y + 1); }";
        let mut t1 = SourceTree::new();
        t1.insert("m.kc", base);
        let mut t2 = SourceTree::new();
        t2.insert("m.kc", patched);
        let o1 = build_tree(&t1, &Options::distro()).unwrap();
        let o2 = build_tree(&t2, &Options::distro()).unwrap();
        let s1 = &o1
            .get("m.kc")
            .unwrap()
            .section_by_name(".text")
            .unwrap()
            .1
            .data;
        let s2 = &o2
            .get("m.kc")
            .unwrap()
            .section_by_name(".text")
            .unwrap()
            .1
            .data;
        assert_ne!(s1, s2);
    }

    #[test]
    fn unchanged_function_sections_identical_across_patch() {
        // With -ffunction-sections, a patch to f leaves g's section bytes
        // and relocations identical (paper §3.2).
        let base = "int f(int x) { return x + 1; }\
                    int g(int y) { return helper(y); }";
        let patched = "int f(int x) { return x + 2; }\
                       int g(int y) { return helper(y); }";
        let o1 = compile_unit("m.kc", base, &Options::pre_post()).unwrap();
        let o2 = compile_unit("m.kc", patched, &Options::pre_post()).unwrap();
        let g1 = o1.section_by_name(".text.g").unwrap().1;
        let g2 = o2.section_by_name(".text.g").unwrap().1;
        assert_eq!(g1.data, g2.data);
        assert_eq!(g1.relocs, g2.relocs);
        let f1 = o1.section_by_name(".text.f").unwrap().1;
        let f2 = o2.section_by_name(".text.f").unwrap().1;
        assert_ne!(f1.data, f2.data);
    }

    #[test]
    fn compiler_version_changes_bytes() {
        let src = "int f(int a, int b) { return a * b + 3; }";
        let v1 = compile_unit(
            "m.kc",
            src,
            &Options {
                cc_version: 1,
                ..Options::pre_post()
            },
        )
        .unwrap();
        let v2 = compile_unit(
            "m.kc",
            src,
            &Options {
                cc_version: 2,
                ..Options::pre_post()
            },
        )
        .unwrap();
        assert_ne!(
            v1.section_by_name(".text.f").unwrap().1.data,
            v2.section_by_name(".text.f").unwrap().1.data
        );
    }

    #[test]
    fn cached_build_is_byte_identical_to_cold() {
        let mut tree = SourceTree::new();
        tree.insert("include/defs.kh", "struct pair { int a; int b; };");
        tree.insert("fs/a.kc", "int f(int x) { return x + 1; }");
        tree.insert("fs/b.kc", "int g(int y) { return y * 2; }");
        tree.insert("arch/e.ks", "entry:\n    ret\n");
        let cold = build_tree(&tree, &Options::pre_post()).unwrap();
        let cache = BuildCache::new();
        let (first, s1) = build_tree_cached(&tree, &Options::pre_post(), &cache).unwrap();
        let (warm, s2) = build_tree_cached(&tree, &Options::pre_post(), &cache).unwrap();
        assert_eq!(cold, first);
        assert_eq!(cold, warm);
        assert_eq!(s1.misses, 3, "cold build compiles every unit");
        assert_eq!(s1.hits, 0);
        assert_eq!(s2.hits, 3, "warm build compiles nothing");
        assert_eq!(s2.misses, 0);
    }

    #[test]
    fn editing_one_unit_recompiles_only_it() {
        let mut tree = SourceTree::new();
        tree.insert("fs/a.kc", "int f(int x) { return x + 1; }");
        tree.insert("fs/b.kc", "int g(int y) { return y * 2; }");
        tree.insert("fs/c.kc", "int h(int z) { return z - 3; }");
        let cache = BuildCache::new();
        build_tree_cached(&tree, &Options::pre_post(), &cache).unwrap();
        tree.set("fs/b.kc", "int g(int y) { return y * 4; }".into());
        let (set, stats) = build_tree_cached(&tree, &Options::pre_post(), &cache).unwrap();
        assert_eq!(stats.misses, 1, "only the edited unit recompiles");
        assert_eq!(stats.hits, 2);
        assert_eq!(set, build_tree(&tree, &Options::pre_post()).unwrap());
    }

    #[test]
    fn header_edit_invalidates_kc_but_not_ks() {
        let mut tree = SourceTree::new();
        tree.insert("include/defs.kh", "struct pair { int a; int b; };");
        tree.insert("fs/a.kc", "int f(int x) { return x + 1; }");
        tree.insert("arch/e.ks", "entry:\n    ret\n");
        let cache = BuildCache::new();
        build_tree_cached(&tree, &Options::pre_post(), &cache).unwrap();
        tree.set(
            "include/defs.kh",
            "struct pair { int a; int b; int c; };".into(),
        );
        let (set, stats) = build_tree_cached(&tree, &Options::pre_post(), &cache).unwrap();
        // The .kc unit sees headers and must recompile; the assembly
        // unit does not and must hit.
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(set, build_tree(&tree, &Options::pre_post()).unwrap());
    }

    #[test]
    fn option_change_misses_the_cache() {
        let mut tree = SourceTree::new();
        tree.insert("m.kc", "int f() { return 7; }");
        let cache = BuildCache::new();
        build_tree_cached(&tree, &Options::pre_post(), &cache).unwrap();
        let (set, stats) = build_tree_cached(&tree, &Options::distro(), &cache).unwrap();
        assert_eq!(stats.misses, 1, "different Options must not share objects");
        assert_eq!(set, build_tree(&tree, &Options::distro()).unwrap());
    }

    #[test]
    fn non_source_files_ignored() {
        let mut tree = SourceTree::new();
        tree.insert("README", "not code");
        tree.insert("m.kc", "int f() { return 0; }");
        let set = build_tree(&tree, &Options::distro()).unwrap();
        assert_eq!(set.len(), 1);
    }
}
