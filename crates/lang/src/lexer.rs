//! The `kc` lexer.

use crate::token::{Token, TokenKind};
use crate::CompileError;

/// Tokenises a compilation unit.
///
/// `//` and `/* */` comments are skipped. Lines beginning with `#`
/// (preprocessor-style, e.g. `#include "ksplice-patch.h"`) are accepted
/// and ignored so that patches written against kernel conventions lex
/// unchanged.
pub fn lex(unit: &str, src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let err = |line: u32, msg: String| CompileError::new(unit, line, msg);

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                // Preprocessor-style line: skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start_line, "unterminated block comment".into()));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' => {
                let start_line = line;
                i += 1;
                let mut s = Vec::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(err(start_line, "unterminated string literal".into()))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes
                                .get(i + 1)
                                .ok_or_else(|| err(start_line, "dangling escape".into()))?;
                            s.push(match esc {
                                b'n' => b'\n',
                                b't' => b'\t',
                                b'0' => 0,
                                b'\\' => b'\\',
                                b'"' => b'"',
                                other => {
                                    return Err(err(
                                        start_line,
                                        format!("unknown escape \\{}", *other as char),
                                    ))
                                }
                            });
                            i += 2;
                        }
                        Some(&b) => {
                            s.push(b);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: start_line,
                });
            }
            b'\'' => {
                // Character literal → integer token.
                let start_line = line;
                let (val, consumed) = match (bytes.get(i + 1), bytes.get(i + 2)) {
                    (Some(b'\\'), Some(esc)) => {
                        let v = match esc {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            other => {
                                return Err(err(
                                    start_line,
                                    format!("unknown escape \\{}", *other as char),
                                ))
                            }
                        };
                        (v as i64, 4)
                    }
                    (Some(&ch), _) if ch != b'\'' => (ch as i64, 3),
                    _ => return Err(err(start_line, "empty character literal".into())),
                };
                if bytes.get(i + consumed - 1) != Some(&b'\'') {
                    return Err(err(start_line, "unterminated character literal".into()));
                }
                tokens.push(Token {
                    kind: TokenKind::Int(val),
                    line: start_line,
                });
                i += consumed;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut radix = 10;
                if c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    radix = 16;
                    i += 2;
                }
                let digits_start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_hexdigit() && radix == 16
                        || bytes[i].is_ascii_digit() && radix == 10)
                {
                    i += 1;
                }
                let text = &src[digits_start..i];
                let text = if radix == 16 { text } else { &src[start..i] };
                let value = i64::from_str_radix(text, radix)
                    .map_err(|_| err(line, format!("invalid integer literal `{text}`")))?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::ident_or_keyword(&src[start..i]),
                    line,
                });
            }
            _ => {
                let two = |a: u8, b: u8| c == a && bytes.get(i + 1) == Some(&b);
                let (kind, width) = if two(b'-', b'>') {
                    (TokenKind::Arrow, 2)
                } else if two(b'<', b'<') {
                    (TokenKind::Shl, 2)
                } else if two(b'>', b'>') {
                    (TokenKind::Shr, 2)
                } else if two(b'=', b'=') {
                    (TokenKind::EqEq, 2)
                } else if two(b'!', b'=') {
                    (TokenKind::NotEq, 2)
                } else if two(b'<', b'=') {
                    (TokenKind::Le, 2)
                } else if two(b'>', b'=') {
                    (TokenKind::Ge, 2)
                } else if two(b'&', b'&') {
                    (TokenKind::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (TokenKind::OrOr, 2)
                } else {
                    let k = match c {
                        b'(' => TokenKind::LParen,
                        b')' => TokenKind::RParen,
                        b'{' => TokenKind::LBrace,
                        b'}' => TokenKind::RBrace,
                        b'[' => TokenKind::LBracket,
                        b']' => TokenKind::RBracket,
                        b';' => TokenKind::Semi,
                        b',' => TokenKind::Comma,
                        b'.' => TokenKind::Dot,
                        b'=' => TokenKind::Assign,
                        b'+' => TokenKind::Plus,
                        b'-' => TokenKind::Minus,
                        b'*' => TokenKind::Star,
                        b'/' => TokenKind::Slash,
                        b'%' => TokenKind::Percent,
                        b'&' => TokenKind::Amp,
                        b'|' => TokenKind::Pipe,
                        b'^' => TokenKind::Caret,
                        b'~' => TokenKind::Tilde,
                        b'!' => TokenKind::Bang,
                        b'<' => TokenKind::Lt,
                        b'>' => TokenKind::Gt,
                        other => {
                            return Err(err(
                                line,
                                format!("unexpected character `{}`", other as char),
                            ))
                        }
                    };
                    (k, 1)
                };
                tokens.push(Token { kind, line });
                i += width;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex("t.kc", src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("static int x;"),
            vec![
                TokenKind::KwStatic,
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 0x1f"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(0x1f),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a->b << c >= d && e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Shl,
                TokenKind::Ident("c".into()),
                TokenKind::Ge,
                TokenKind::Ident("d".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        let src = "#include \"ksplice-patch.h\"\n// line\nint /* block\nspanning */ x;";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            kinds(r#""hi\n" 'A' '\n'"#),
            vec![
                TokenKind::Str(b"hi\n".to_vec()),
                TokenKind::Int(65),
                TokenKind::Int(10),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("t.kc", "int\nx\n;\n").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("t.kc", "\"unterminated").is_err());
        assert!(lex("t.kc", "/* unterminated").is_err());
        assert!(lex("t.kc", "`").is_err());
        assert!(lex("t.kc", "''").is_err());
    }
}
