//! In-place AST traversal used by the fuzzer's mutators.
//!
//! Every walker visits nodes in a single canonical order (item order,
//! then statement order, then left-to-right inside expressions), so a
//! "site index" — the N-th visited node of some kind — identifies the
//! same node on every walk of the same unit. Mutation descriptors are
//! serialized as site indices and replayed deterministically on top of
//! this guarantee.

use crate::ast::*;

/// Visits every expression in a statement list in pre-order (each node
/// before its children), mutably.
pub fn walk_stmts_exprs_mut(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Expr)) {
    for s in stmts {
        walk_stmt_exprs_mut(s, f);
    }
}

fn walk_stmt_exprs_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut stmt.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                walk_expr_mut(e, f);
            }
        }
        StmtKind::Expr(e) => walk_expr_mut(e, f),
        StmtKind::Assign { target, value } => {
            walk_expr_mut(target, f);
            walk_expr_mut(value, f);
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            walk_expr_mut(cond, f);
            walk_stmts_exprs_mut(then_body, f);
            walk_stmts_exprs_mut(else_body, f);
        }
        StmtKind::While { cond, body } => {
            walk_expr_mut(cond, f);
            walk_stmts_exprs_mut(body, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                walk_stmt_exprs_mut(s, f);
            }
            if let Some(c) = cond {
                walk_expr_mut(c, f);
            }
            if let Some(s) = step {
                walk_stmt_exprs_mut(s, f);
            }
            walk_stmts_exprs_mut(body, f);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                walk_expr_mut(e, f);
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(body) => walk_stmts_exprs_mut(body, f),
    }
}

/// Visits an expression tree in pre-order, mutably.
pub fn walk_expr_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match &mut e.kind {
        ExprKind::Unary(_, operand) => walk_expr_mut(operand, f),
        ExprKind::Binary(_, l, r) => {
            walk_expr_mut(l, f);
            walk_expr_mut(r, f);
        }
        ExprKind::Call { callee, args } => {
            walk_expr_mut(callee, f);
            for a in args {
                walk_expr_mut(a, f);
            }
        }
        ExprKind::Index(base, idx) => {
            walk_expr_mut(base, f);
            walk_expr_mut(idx, f);
        }
        ExprKind::Field(base, _) | ExprKind::PField(base, _) => walk_expr_mut(base, f),
        ExprKind::Num(_) | ExprKind::Str(_) | ExprKind::Ident(_) | ExprKind::Sizeof(_) => {}
    }
}

/// Visits every expression in every function body of the unit, in
/// canonical order (global initialisers are *not* visited — data edits
/// are a separate mutator with different pipeline semantics).
pub fn walk_unit_fn_exprs_mut(unit: &mut Unit, f: &mut impl FnMut(&mut Expr)) {
    for item in &mut unit.items {
        if let FileItem::Func(func) = item {
            walk_stmts_exprs_mut(&mut func.body, f);
        }
    }
}

/// A statement-list visitor context: the `int`-typed variable names in
/// scope at the *start* of the visited block (parameters plus locals
/// declared in enclosing blocks before it).
pub struct BlockCx<'a> {
    /// Scalar `int` variables usable by synthesized statements.
    pub scope_ints: &'a [String],
    /// Nesting depth: 0 for a function's top-level body.
    pub depth: usize,
}

/// Visits every statement list (function bodies and all nested
/// control-flow bodies) of every function, in canonical order, with the
/// in-scope `int` variables at block entry. The callback may insert or
/// remove statements in the visited block; nested blocks of *newly
/// inserted* statements are not re-visited (the walk snapshots the list
/// length on entry).
pub fn walk_unit_blocks_mut(unit: &mut Unit, f: &mut impl FnMut(&mut Vec<Stmt>, &BlockCx)) {
    for item in &mut unit.items {
        if let FileItem::Func(func) = item {
            let mut scope: Vec<String> = func
                .params
                .iter()
                .filter(|(_, ty)| matches!(ty, Type::Int))
                .map(|(n, _)| n.clone())
                .collect();
            walk_block_mut(&mut func.body, &mut scope, 0, f);
        }
    }
}

fn walk_block_mut(
    block: &mut Vec<Stmt>,
    scope: &mut Vec<String>,
    depth: usize,
    f: &mut impl FnMut(&mut Vec<Stmt>, &BlockCx),
) {
    let scope_base = scope.len();
    f(
        block,
        &BlockCx {
            scope_ints: &scope[..],
            depth,
        },
    );
    let visit_len = block.len();
    for i in 0..visit_len {
        if i >= block.len() {
            break;
        }
        // Record declarations as they pass so nested blocks see them.
        if let StmtKind::Decl { name, ty, .. } = &block[i].kind {
            if matches!(ty, Type::Int) {
                scope.push(name.clone());
            }
            continue;
        }
        match &mut block[i].kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                walk_block_mut(then_body, scope, depth + 1, f);
                walk_block_mut(else_body, scope, depth + 1, f);
            }
            StmtKind::While { body, .. } => walk_block_mut(body, scope, depth + 1, f),
            StmtKind::For { body, .. } => walk_block_mut(body, scope, depth + 1, f),
            StmtKind::Block(body) => walk_block_mut(body, scope, depth + 1, f),
            _ => {}
        }
    }
    scope.truncate(scope_base);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    const SRC: &str = "int f(int a, byte *p) {\
        int x;\
        x = a + 1;\
        if (x > 2) { int y; y = x * 3; while (y) { y = y - 1; } }\
        return x;\
    }";

    #[test]
    fn expr_walk_order_is_stable() {
        let mut u = parse_unit("t.kc", SRC).unwrap();
        let mut nums = Vec::new();
        walk_unit_fn_exprs_mut(&mut u, &mut |e| {
            if let ExprKind::Num(v) = e.kind {
                nums.push(v);
            }
        });
        assert_eq!(nums, vec![1, 2, 3, 1]);
    }

    #[test]
    fn block_walk_sees_scope() {
        let mut u = parse_unit("t.kc", SRC).unwrap();
        let mut seen = Vec::new();
        walk_unit_blocks_mut(&mut u, &mut |block, cx| {
            seen.push((block.len(), cx.depth, cx.scope_ints.to_vec()));
        });
        // Function body (param a, not byte* p), then if-then block (a, x),
        // then the while body nested in it (a, x, y), then the empty else.
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0].2, vec!["a".to_string()]);
        assert_eq!(seen[1].2, vec!["a".to_string(), "x".to_string()]);
        assert_eq!(seen[2].2, vec!["a".to_string(), "x".to_string(), "y".to_string()]);
        assert_eq!(seen[3].2, vec!["a".to_string(), "x".to_string()]);
    }
}
