//! AST-level function inlining — the compiler freedom at the heart of the
//! paper's safety argument.
//!
//! "Compilers commonly inline functions that do not have the `inline`
//! keyword, so this concern is not limited to some small subset of
//! functions that say inline in the source" (paper §4.2). Accordingly,
//! this pass inlines *any* sufficiently small same-unit function at `-O1`
//! and above; the `inline` keyword only raises the size budget. A patched
//! function may therefore have stale copies hiding inside other functions
//! of the unit — which is why Ksplice diffs whole optimisation units and
//! verifies the run code rather than trusting source-level reasoning.
//!
//! Inlining is semantics-preserving and deliberately conservative:
//!
//! * only callees without loops, `break`/`continue`, or static locals are
//!   candidates (their bodies are wrapped in a one-shot `while` so early
//!   `return`s become `break`s);
//! * call sites in `while`/`for` conditions or steps, or on the
//!   short-circuit side of `&&`/`||`, are left alone (hoisting would
//!   change evaluation);
//! * recursion is cut off by an inlining depth limit.
//!
//! A `static` function whose every use has been inlined away is dropped
//! from the unit, as gcc drops it — so a patch to such a function changes
//! *only* its inlined copies, the hardest case for a hot updater.

use std::collections::BTreeMap;

use crate::ast::*;
use crate::Options;

/// Maximum transitive inlining depth.
const MAX_DEPTH: u32 = 3;

/// Which functions were inlined where: callee → callers that absorbed a
/// copy. Used both by the build pipeline and by evaluation statistics
/// (paper §6.3 reports 20 of 64 patches modified an inlined function).
pub type InlineReport = BTreeMap<String, Vec<String>>;

/// Inlines calls within `unit` according to `opt`, dropping fully-inlined
/// static functions, and reports what was inlined where.
pub fn inline_unit(unit: &mut Unit, opt: &Options) -> InlineReport {
    let mut report = InlineReport::new();
    if opt.opt_level == 0 {
        return report;
    }
    // Snapshot candidate bodies (pre-inlining, like gcc's early inliner).
    let candidates: BTreeMap<String, Function> = unit
        .functions()
        .filter(|f| is_candidate(f, opt))
        .map(|f| (f.name.clone(), f.clone()))
        .collect();
    let mut counter = 0u32;
    for item in &mut unit.items {
        let FileItem::Func(f) = item else { continue };
        let caller = f.name.clone();
        let mut body = std::mem::take(&mut f.body);
        for depth in 0..MAX_DEPTH {
            let mut any = false;
            body = inline_block(
                body,
                &candidates,
                &caller,
                &mut counter,
                &mut any,
                &mut report,
            );
            let _ = depth;
            if !any {
                break;
            }
        }
        f.body = body;
    }
    drop_dead_statics(unit, &report);
    report
}

/// Computes the inline report without mutating the unit.
pub fn inline_report(unit: &Unit, opt: &Options) -> InlineReport {
    let mut clone = unit.clone();
    inline_unit(&mut clone, opt)
}

fn is_candidate(f: &Function, opt: &Options) -> bool {
    let budget = match (opt.opt_level, f.is_inline) {
        (0, _) => return false,
        (1, false) => 12,
        (1, true) => 32,
        (_, false) => 20,
        (_, true) => 48,
    };
    f.params.len() <= 6
        && body_ok_for_inline(&f.body)
        && body_size(&f.body) <= budget
        && !calls_function(&f.body, &f.name)
}

/// Candidates may not contain loops, loop-control or static locals.
fn body_ok_for_inline(body: &[Stmt]) -> bool {
    body.iter().all(|s| match &s.kind {
        StmtKind::While { .. } | StmtKind::For { .. } | StmtKind::Break | StmtKind::Continue => {
            false
        }
        StmtKind::Decl { is_static, .. } => !is_static,
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => body_ok_for_inline(then_body) && body_ok_for_inline(else_body),
        StmtKind::Block(b) => body_ok_for_inline(b),
        _ => true,
    })
}

/// AST size metric: statements plus expression nodes.
fn body_size(body: &[Stmt]) -> usize {
    body.iter().map(stmt_size).sum()
}

fn stmt_size(s: &Stmt) -> usize {
    1 + match &s.kind {
        StmtKind::Decl { init, .. } => init.as_ref().map_or(0, expr_size),
        StmtKind::Expr(e) => expr_size(e),
        StmtKind::Assign { target, value } => expr_size(target) + expr_size(value),
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => expr_size(cond) + body_size(then_body) + body_size(else_body),
        StmtKind::While { cond, body } => expr_size(cond) + body_size(body),
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            init.as_ref().map_or(0, |s| stmt_size(s))
                + cond.as_ref().map_or(0, expr_size)
                + step.as_ref().map_or(0, |s| stmt_size(s))
                + body_size(body)
        }
        StmtKind::Return(e) => e.as_ref().map_or(0, expr_size),
        StmtKind::Block(b) => body_size(b),
        StmtKind::Break | StmtKind::Continue => 0,
    }
}

fn expr_size(e: &Expr) -> usize {
    1 + match &e.kind {
        ExprKind::Unary(_, i) => expr_size(i),
        ExprKind::Binary(_, l, r) => expr_size(l) + expr_size(r),
        ExprKind::Call { callee, args } => {
            expr_size(callee) + args.iter().map(expr_size).sum::<usize>()
        }
        ExprKind::Index(b, i) => expr_size(b) + expr_size(i),
        ExprKind::Field(b, _) | ExprKind::PField(b, _) => expr_size(b),
        _ => 0,
    }
}

fn calls_function(body: &[Stmt], name: &str) -> bool {
    fn in_expr(e: &Expr, name: &str) -> bool {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                if let ExprKind::Ident(n) = &callee.kind {
                    if n == name {
                        return true;
                    }
                }
                in_expr(callee, name) || args.iter().any(|a| in_expr(a, name))
            }
            ExprKind::Unary(_, i) => in_expr(i, name),
            ExprKind::Binary(_, l, r) => in_expr(l, name) || in_expr(r, name),
            ExprKind::Index(b, i) => in_expr(b, name) || in_expr(i, name),
            ExprKind::Field(b, _) | ExprKind::PField(b, _) => in_expr(b, name),
            _ => false,
        }
    }
    fn in_stmt(s: &Stmt, name: &str) -> bool {
        match &s.kind {
            StmtKind::Decl { init, .. } => init.as_ref().is_some_and(|e| in_expr(e, name)),
            StmtKind::Expr(e) => in_expr(e, name),
            StmtKind::Assign { target, value } => in_expr(target, name) || in_expr(value, name),
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                in_expr(cond, name)
                    || then_body.iter().any(|s| in_stmt(s, name))
                    || else_body.iter().any(|s| in_stmt(s, name))
            }
            StmtKind::While { cond, body } => {
                in_expr(cond, name) || body.iter().any(|s| in_stmt(s, name))
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                init.as_ref().is_some_and(|s| in_stmt(s, name))
                    || cond.as_ref().is_some_and(|e| in_expr(e, name))
                    || step.as_ref().is_some_and(|s| in_stmt(s, name))
                    || body.iter().any(|s| in_stmt(s, name))
            }
            StmtKind::Return(e) => e.as_ref().is_some_and(|e| in_expr(e, name)),
            StmtKind::Block(b) => b.iter().any(|s| in_stmt(s, name)),
            StmtKind::Break | StmtKind::Continue => false,
        }
    }
    body.iter().any(|s| in_stmt(s, name))
}

/// Inlines eligible calls in a statement list, returning the new list.
fn inline_block(
    body: Vec<Stmt>,
    candidates: &BTreeMap<String, Function>,
    caller: &str,
    counter: &mut u32,
    any: &mut bool,
    report: &mut InlineReport,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for mut s in body {
        // First hoist calls out of this statement's hoistable expressions.
        let mut prefix = Vec::new();
        match &mut s.kind {
            StmtKind::Decl { init: Some(e), .. }
            | StmtKind::Expr(e)
            | StmtKind::Return(Some(e)) => {
                hoist_calls(
                    e,
                    candidates,
                    caller,
                    counter,
                    &mut prefix,
                    any,
                    report,
                    true,
                );
            }
            StmtKind::Assign { target, value } => {
                hoist_calls(
                    target,
                    candidates,
                    caller,
                    counter,
                    &mut prefix,
                    any,
                    report,
                    true,
                );
                hoist_calls(
                    value,
                    candidates,
                    caller,
                    counter,
                    &mut prefix,
                    any,
                    report,
                    true,
                );
            }
            StmtKind::If { cond, .. } => {
                hoist_calls(
                    cond,
                    candidates,
                    caller,
                    counter,
                    &mut prefix,
                    any,
                    report,
                    true,
                );
            }
            // Loop conditions and steps are re-evaluated; leave them.
            StmtKind::While { .. } | StmtKind::For { .. } => {}
            _ => {}
        }
        // Then recurse into nested blocks.
        s.kind = match s.kind {
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => StmtKind::If {
                cond,
                then_body: inline_block(then_body, candidates, caller, counter, any, report),
                else_body: inline_block(else_body, candidates, caller, counter, any, report),
            },
            StmtKind::While { cond, body } => StmtKind::While {
                cond,
                body: inline_block(body, candidates, caller, counter, any, report),
            },
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => StmtKind::For {
                init,
                cond,
                step,
                body: inline_block(body, candidates, caller, counter, any, report),
            },
            StmtKind::Block(b) => {
                StmtKind::Block(inline_block(b, candidates, caller, counter, any, report))
            }
            other => other,
        };
        out.extend(prefix);
        out.push(s);
    }
    out
}

/// Replaces eligible `Call` sub-expressions with fresh temporaries,
/// appending the expanded callee bodies to `prefix`. `hoistable` is false
/// under short-circuit right-hand sides.
#[allow(clippy::too_many_arguments)]
fn hoist_calls(
    e: &mut Expr,
    candidates: &BTreeMap<String, Function>,
    caller: &str,
    counter: &mut u32,
    prefix: &mut Vec<Stmt>,
    any: &mut bool,
    report: &mut InlineReport,
    hoistable: bool,
) {
    // Recurse first (innermost calls hoist first, preserving order).
    match &mut e.kind {
        ExprKind::Unary(_, i) => hoist_calls(
            i, candidates, caller, counter, prefix, any, report, hoistable,
        ),
        ExprKind::Binary(op, l, r) => {
            hoist_calls(
                l, candidates, caller, counter, prefix, any, report, hoistable,
            );
            let rhs_hoistable = hoistable && !matches!(op, BinaryOp::LAnd | BinaryOp::LOr);
            hoist_calls(
                r,
                candidates,
                caller,
                counter,
                prefix,
                any,
                report,
                rhs_hoistable,
            );
        }
        ExprKind::Call { callee, args } => {
            for a in args.iter_mut() {
                hoist_calls(
                    a, candidates, caller, counter, prefix, any, report, hoistable,
                );
            }
            hoist_calls(
                callee, candidates, caller, counter, prefix, any, report, hoistable,
            );
        }
        ExprKind::Index(b, i) => {
            hoist_calls(
                b, candidates, caller, counter, prefix, any, report, hoistable,
            );
            hoist_calls(
                i, candidates, caller, counter, prefix, any, report, hoistable,
            );
        }
        ExprKind::Field(b, _) | ExprKind::PField(b, _) => hoist_calls(
            b, candidates, caller, counter, prefix, any, report, hoistable,
        ),
        _ => {}
    }
    if !hoistable {
        return;
    }
    // Now consider this node itself.
    let ExprKind::Call { callee, args } = &e.kind else {
        return;
    };
    let ExprKind::Ident(name) = &callee.kind else {
        return;
    };
    let Some(f) = candidates.get(name) else {
        return;
    };
    if f.name == caller || f.params.len() != args.len() {
        return;
    }
    *any = true;
    report
        .entry(f.name.clone())
        .or_default()
        .push(caller.to_string());
    let id = *counter;
    *counter += 1;
    let line = e.line;
    let pfx = format!("__inl{id}_");
    let ret = format!("{pfx}ret");
    // Temporaries for the return slot and each argument.
    prefix.push(Stmt::new(
        StmtKind::Decl {
            name: ret.clone(),
            ty: Type::Int,
            is_static: false,
            init: Some(Expr::num(0, line)),
        },
        line,
    ));
    for ((pname, pty), arg) in f.params.iter().zip(args) {
        prefix.push(Stmt::new(
            StmtKind::Decl {
                name: format!("{pfx}{pname}"),
                ty: pty.clone(),
                is_static: false,
                init: Some(arg.clone()),
            },
            line,
        ));
    }
    // Rename the body's locals/params and turn returns into
    // `ret = ...; break;`, then wrap in a one-shot loop so early returns
    // exit cleanly (candidates contain no loops of their own).
    let mut body = f.body.clone();
    let param_names: Vec<&str> = f.params.iter().map(|(n, _)| n.as_str()).collect();
    let mut renames: BTreeMap<String, String> = param_names
        .iter()
        .map(|n| (n.to_string(), format!("{pfx}{n}")))
        .collect();
    for s in &mut body {
        rename_stmt(s, &pfx, &mut renames, &ret);
    }
    body.push(Stmt::new(StmtKind::Break, line));
    prefix.push(Stmt::new(
        StmtKind::While {
            cond: Expr::num(1, line),
            body,
        },
        line,
    ));
    e.kind = ExprKind::Ident(ret);
}

/// Renames locals (declaring new names on the fly) and rewrites returns.
fn rename_stmt(s: &mut Stmt, pfx: &str, renames: &mut BTreeMap<String, String>, ret: &str) {
    let line = s.line;
    match &mut s.kind {
        StmtKind::Decl { name, init, .. } => {
            if let Some(e) = init {
                rename_expr(e, renames);
            }
            let new = format!("{pfx}{name}");
            renames.insert(name.clone(), new.clone());
            *name = new;
        }
        StmtKind::Expr(e) => rename_expr(e, renames),
        StmtKind::Assign { target, value } => {
            rename_expr(target, renames);
            rename_expr(value, renames);
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            rename_expr(cond, renames);
            for st in then_body.iter_mut().chain(else_body.iter_mut()) {
                rename_stmt(st, pfx, renames, ret);
            }
        }
        StmtKind::Block(b) => {
            for st in b {
                rename_stmt(st, pfx, renames, ret);
            }
        }
        StmtKind::Return(value) => {
            let assigned = match value.take() {
                Some(mut e) => {
                    rename_expr(&mut e, renames);
                    e
                }
                None => Expr::num(0, line),
            };
            s.kind = StmtKind::Block(vec![
                Stmt::new(
                    StmtKind::Assign {
                        target: Expr::new(ExprKind::Ident(ret.to_string()), line),
                        value: assigned,
                    },
                    line,
                ),
                Stmt::new(StmtKind::Break, line),
            ]);
        }
        // Candidates contain no loops or loop-control statements.
        StmtKind::While { .. } | StmtKind::For { .. } | StmtKind::Break | StmtKind::Continue => {
            unreachable!("non-candidate body slipped through")
        }
    }
}

fn rename_expr(e: &mut Expr, renames: &BTreeMap<String, String>) {
    match &mut e.kind {
        ExprKind::Ident(n) => {
            if let Some(new) = renames.get(n) {
                *n = new.clone();
            }
        }
        ExprKind::Unary(_, i) => rename_expr(i, renames),
        ExprKind::Binary(_, l, r) => {
            rename_expr(l, renames);
            rename_expr(r, renames);
        }
        ExprKind::Call { callee, args } => {
            // Do not rename a direct callee name: function names are not
            // locals (candidates cannot shadow function names with params
            // because sema forbids calling through shadowed locals here).
            if !matches!(callee.kind, ExprKind::Ident(_)) {
                rename_expr(callee, renames);
            } else if let ExprKind::Ident(n) = &mut callee.kind {
                if let Some(new) = renames.get(n) {
                    *n = new.clone(); // indirect call through a renamed local
                }
            }
            for a in args {
                rename_expr(a, renames);
            }
        }
        ExprKind::Index(b, i) => {
            rename_expr(b, renames);
            rename_expr(i, renames);
        }
        ExprKind::Field(b, _) | ExprKind::PField(b, _) => rename_expr(b, renames),
        _ => {}
    }
}

/// Drops `static` functions that were inlined at every call site and are
/// no longer referenced anywhere in the unit.
fn drop_dead_statics(unit: &mut Unit, report: &InlineReport) {
    let inlined: Vec<String> = report.keys().cloned().collect();
    let mut dead = Vec::new();
    for name in &inlined {
        let Some(f) = unit.function(name) else {
            continue;
        };
        if !f.is_static {
            continue;
        }
        let referenced = unit.items.iter().any(|item| match item {
            FileItem::Func(g) => g.name != *name && calls_or_mentions(&g.body, name),
            FileItem::Hook { func, .. } => func == name,
            FileItem::Global(g) => match &g.init {
                Some(Init::Scalar(e)) => mentions_expr(e, name),
                Some(Init::List(es)) => es.iter().any(|e| mentions_expr(e, name)),
                None => false,
            },
            _ => false,
        });
        if !referenced {
            dead.push(name.clone());
        }
    }
    unit.items.retain(|item| match item {
        FileItem::Func(f) => !dead.contains(&f.name),
        _ => true,
    });
}

fn calls_or_mentions(body: &[Stmt], name: &str) -> bool {
    fn stmt(s: &Stmt, name: &str) -> bool {
        match &s.kind {
            StmtKind::Decl { init, .. } => init.as_ref().is_some_and(|e| mentions_expr(e, name)),
            StmtKind::Expr(e) => mentions_expr(e, name),
            StmtKind::Assign { target, value } => {
                mentions_expr(target, name) || mentions_expr(value, name)
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                mentions_expr(cond, name)
                    || then_body.iter().any(|s| stmt(s, name))
                    || else_body.iter().any(|s| stmt(s, name))
            }
            StmtKind::While { cond, body } => {
                mentions_expr(cond, name) || body.iter().any(|s| stmt(s, name))
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                init.as_ref().is_some_and(|s| stmt(s, name))
                    || cond.as_ref().is_some_and(|e| mentions_expr(e, name))
                    || step.as_ref().is_some_and(|s| stmt(s, name))
                    || body.iter().any(|s| stmt(s, name))
            }
            StmtKind::Return(e) => e.as_ref().is_some_and(|e| mentions_expr(e, name)),
            StmtKind::Block(b) => b.iter().any(|s| stmt(s, name)),
            StmtKind::Break | StmtKind::Continue => false,
        }
    }
    body.iter().any(|s| stmt(s, name))
}

fn mentions_expr(e: &Expr, name: &str) -> bool {
    match &e.kind {
        ExprKind::Ident(n) => n == name,
        ExprKind::Unary(_, i) => mentions_expr(i, name),
        ExprKind::Binary(_, l, r) => mentions_expr(l, name) || mentions_expr(r, name),
        ExprKind::Call { callee, args } => {
            mentions_expr(callee, name) || args.iter().any(|a| mentions_expr(a, name))
        }
        ExprKind::Index(b, i) => mentions_expr(b, name) || mentions_expr(i, name),
        ExprKind::Field(b, _) | ExprKind::PField(b, _) => mentions_expr(b, name),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn opt2() -> Options {
        Options {
            opt_level: 2,
            ..Options::distro()
        }
    }

    #[test]
    fn inlines_small_function_without_keyword() {
        let mut u = parse_unit(
            "t.kc",
            "static int min(int a, int b) { if (a < b) return a; return b; }\
             int f(int x) { return min(x, 10); }",
        )
        .unwrap();
        let report = inline_unit(&mut u, &opt2());
        assert_eq!(report["min"], vec!["f".to_string()]);
        // min was static and fully inlined: dropped.
        assert!(u.function("min").is_none());
        // The call site became an identifier read.
        let f = u.function("f").unwrap();
        assert!(f.body.len() > 1, "body should contain the expanded callee");
    }

    #[test]
    fn keeps_nonstatic_out_of_line_copy() {
        let mut u = parse_unit(
            "t.kc",
            "int min(int a, int b) { if (a < b) return a; return b; }\
             int f(int x) { return min(x, 10); }",
        )
        .unwrap();
        let report = inline_unit(&mut u, &opt2());
        assert!(report.contains_key("min"));
        assert!(u.function("min").is_some());
    }

    #[test]
    fn address_taken_static_kept() {
        let mut u = parse_unit(
            "t.kc",
            "static int tick() { return 1; }\
             int ops = &tick;\
             int f() { return tick(); }",
        )
        .unwrap();
        inline_unit(&mut u, &opt2());
        assert!(u.function("tick").is_some());
    }

    #[test]
    fn loops_prevent_inlining() {
        let mut u = parse_unit(
            "t.kc",
            "static int spin(int n) { while (n > 0) { n = n - 1; } return n; }\
             int f() { return spin(5); }",
        )
        .unwrap();
        let report = inline_unit(&mut u, &opt2());
        assert!(report.is_empty());
        assert!(u.function("spin").is_some());
    }

    #[test]
    fn short_circuit_rhs_not_hoisted() {
        let mut u = parse_unit(
            "t.kc",
            "static int side() { return 1; }\
             int f(int x) { if (x && side()) return 1; return 0; }",
        )
        .unwrap();
        let report = inline_unit(&mut u, &opt2());
        assert!(!report.contains_key("side"), "rhs of && must not hoist");
    }

    #[test]
    fn loop_condition_not_hoisted() {
        let mut u = parse_unit(
            "t.kc",
            "static int limit() { return 10; }\
             int f(int i) { int n; n = 0; while (i < limit()) { i = i + 1; n = n + 1; } return n; }",
        )
        .unwrap();
        let report = inline_unit(&mut u, &opt2());
        assert!(!report.contains_key("limit"));
    }

    #[test]
    fn recursion_not_inlined() {
        let mut u = parse_unit(
            "t.kc",
            "static int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\
             int f() { return fact(5); }",
        )
        .unwrap();
        let report = inline_unit(&mut u, &opt2());
        assert!(report.is_empty());
    }

    #[test]
    fn opt0_disables_inlining() {
        let mut u = parse_unit(
            "t.kc",
            "static int one() { return 1; }\
             int f() { return one(); }",
        )
        .unwrap();
        let report = inline_unit(
            &mut u,
            &Options {
                opt_level: 0,
                ..Options::distro()
            },
        );
        assert!(report.is_empty());
        assert!(u.function("one").is_some());
    }

    #[test]
    fn transitive_inlining_bounded() {
        let mut u = parse_unit(
            "t.kc",
            "static int a() { return 1; }\
             static int b() { return a() + 1; }\
             static int c() { return b() + 1; }\
             int f() { return c(); }",
        )
        .unwrap();
        let report = inline_unit(&mut u, &opt2());
        assert!(report.contains_key("c"));
        // All three collapse into f.
        assert!(u.function("a").is_none());
        assert!(u.function("b").is_none());
        assert!(u.function("c").is_none());
    }
}
