//! Constant folding (`-O1` and above).
//!
//! Folds integer arithmetic and `sizeof` into literals. Folding changes
//! object code without changing semantics, which is exactly the class of
//! "extraneous differences" pre-post differencing must tolerate (paper
//! §3.2): a patch that perturbs a constant expression can change bytes in
//! functions the source diff never mentions.

use crate::ast::*;
use crate::sema::{eval_binop, Sema};

/// Folds constants in every function body of the unit.
pub fn fold_unit(unit: &mut Unit, sema: &Sema) {
    for item in &mut unit.items {
        if let FileItem::Func(f) = item {
            for s in &mut f.body {
                fold_stmt(s, sema);
            }
        }
    }
}

fn fold_stmt(s: &mut Stmt, sema: &Sema) {
    match &mut s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                fold_expr(e, sema);
            }
        }
        StmtKind::Expr(e) => fold_expr(e, sema),
        StmtKind::Assign { target, value } => {
            fold_expr(target, sema);
            fold_expr(value, sema);
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            fold_expr(cond, sema);
            for s in then_body.iter_mut().chain(else_body.iter_mut()) {
                fold_stmt(s, sema);
            }
        }
        StmtKind::While { cond, body } => {
            fold_expr(cond, sema);
            for s in body {
                fold_stmt(s, sema);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                fold_stmt(i, sema);
            }
            if let Some(c) = cond {
                fold_expr(c, sema);
            }
            if let Some(st) = step {
                fold_stmt(st, sema);
            }
            for s in body {
                fold_stmt(s, sema);
            }
        }
        StmtKind::Return(Some(e)) => fold_expr(e, sema),
        StmtKind::Block(body) => {
            for s in body {
                fold_stmt(s, sema);
            }
        }
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
    }
}

fn fold_expr(e: &mut Expr, sema: &Sema) {
    match &mut e.kind {
        ExprKind::Sizeof(ty) => {
            e.kind = ExprKind::Num(sema.size_of(ty) as i64);
        }
        ExprKind::Unary(op, inner) => {
            fold_expr(inner, sema);
            if let ExprKind::Num(v) = inner.kind {
                let folded = match op {
                    UnaryOp::Neg => Some(v.wrapping_neg()),
                    UnaryOp::BitNot => Some(!v),
                    UnaryOp::LNot => Some((v == 0) as i64),
                    UnaryOp::Deref | UnaryOp::Addr => None,
                };
                if let Some(v) = folded {
                    e.kind = ExprKind::Num(v);
                }
            }
        }
        ExprKind::Binary(op, l, r) => {
            fold_expr(l, sema);
            fold_expr(r, sema);
            if let (ExprKind::Num(a), ExprKind::Num(b)) = (&l.kind, &r.kind) {
                if let Some(v) = eval_binop(*op, *a, *b) {
                    e.kind = ExprKind::Num(v);
                }
            }
        }
        ExprKind::Call { callee, args } => {
            fold_expr(callee, sema);
            for a in args {
                fold_expr(a, sema);
            }
        }
        ExprKind::Index(b, i) => {
            fold_expr(b, sema);
            fold_expr(i, sema);
        }
        ExprKind::Field(b, _) | ExprKind::PField(b, _) => fold_expr(b, sema),
        ExprKind::Num(_) | ExprKind::Str(_) | ExprKind::Ident(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;
    use crate::sema::check_unit;

    fn folded_return(src: &str) -> ExprKind {
        let mut u = parse_unit("t.kc", src).unwrap();
        let sema = check_unit(&u).unwrap();
        fold_unit(&mut u, &sema);
        let f = u.function("f").unwrap();
        match &f.body.last().unwrap().kind {
            StmtKind::Return(Some(e)) => e.kind.clone(),
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_folds() {
        assert_eq!(
            folded_return("int f() { return 2 * 21; }"),
            ExprKind::Num(42)
        );
        assert_eq!(
            folded_return("int f() { return (1 << 4) | 3; }"),
            ExprKind::Num(19)
        );
        assert_eq!(
            folded_return("int f() { return -(5 - 8); }"),
            ExprKind::Num(3)
        );
    }

    #[test]
    fn sizeof_folds_with_layout() {
        assert_eq!(
            folded_return("struct s { int a; byte b; }; int f() { return sizeof(struct s); }"),
            ExprKind::Num(16)
        );
        assert_eq!(
            folded_return("int f() { return sizeof(int); }"),
            ExprKind::Num(8)
        );
    }

    #[test]
    fn division_by_zero_not_folded() {
        assert!(matches!(
            folded_return("int f() { return 1 / 0; }"),
            ExprKind::Binary(..)
        ));
    }

    #[test]
    fn nonconst_untouched() {
        assert!(matches!(
            folded_return("int f(int x) { return x + 1; }"),
            ExprKind::Binary(..)
        ));
    }
}
