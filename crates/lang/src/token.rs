//! Token definitions for `kc`.

use std::fmt;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// The kinds of `kc` tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and names.
    Ident(String),
    Int(i64),
    Str(Vec<u8>),

    // Keywords.
    KwInt,
    KwByte,
    KwStruct,
    KwStatic,
    KwInline,
    KwExtern,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,

    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Looks up a keyword, or returns an identifier token.
    pub fn ident_or_keyword(word: &str) -> TokenKind {
        match word {
            "int" => TokenKind::KwInt,
            "byte" => TokenKind::KwByte,
            "struct" => TokenKind::KwStruct,
            "static" => TokenKind::KwStatic,
            "inline" => TokenKind::KwInline,
            "extern" => TokenKind::KwExtern,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "sizeof" => TokenKind::KwSizeof,
            _ => TokenKind::Ident(word.to_string()),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::Eof => write!(f, "end of input"),
            other => {
                let text = match other {
                    TokenKind::KwInt => "int",
                    TokenKind::KwByte => "byte",
                    TokenKind::KwStruct => "struct",
                    TokenKind::KwStatic => "static",
                    TokenKind::KwInline => "inline",
                    TokenKind::KwExtern => "extern",
                    TokenKind::KwIf => "if",
                    TokenKind::KwElse => "else",
                    TokenKind::KwWhile => "while",
                    TokenKind::KwFor => "for",
                    TokenKind::KwReturn => "return",
                    TokenKind::KwBreak => "break",
                    TokenKind::KwContinue => "continue",
                    TokenKind::KwSizeof => "sizeof",
                    TokenKind::LParen => "(",
                    TokenKind::RParen => ")",
                    TokenKind::LBrace => "{",
                    TokenKind::RBrace => "}",
                    TokenKind::LBracket => "[",
                    TokenKind::RBracket => "]",
                    TokenKind::Semi => ";",
                    TokenKind::Comma => ",",
                    TokenKind::Dot => ".",
                    TokenKind::Arrow => "->",
                    TokenKind::Assign => "=",
                    TokenKind::Plus => "+",
                    TokenKind::Minus => "-",
                    TokenKind::Star => "*",
                    TokenKind::Slash => "/",
                    TokenKind::Percent => "%",
                    TokenKind::Amp => "&",
                    TokenKind::Pipe => "|",
                    TokenKind::Caret => "^",
                    TokenKind::Tilde => "~",
                    TokenKind::Bang => "!",
                    TokenKind::Shl => "<<",
                    TokenKind::Shr => ">>",
                    TokenKind::EqEq => "==",
                    TokenKind::NotEq => "!=",
                    TokenKind::Lt => "<",
                    TokenKind::Le => "<=",
                    TokenKind::Gt => ">",
                    TokenKind::Ge => ">=",
                    TokenKind::AndAnd => "&&",
                    TokenKind::OrOr => "||",
                    _ => unreachable!("covered above"),
                };
                write!(f, "`{text}`")
            }
        }
    }
}
