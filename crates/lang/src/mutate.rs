//! Seeded AST mutators for `ksplice-fuzz`.
//!
//! Each mutator is tagged with the hot-update pipeline feature it is
//! designed to stress ([`MutatorKind::targets`]). Mutations are
//! identified by *site indices* — the N-th candidate node in the
//! canonical walk order of [`crate::visit`] — so a serialized
//! [`Mutation`] replays byte-identically on the same unit, which is what
//! the campaign shrinker and the checked-in regression cases rely on.

use crate::ast::*;
use crate::visit::{walk_expr_mut, walk_unit_blocks_mut, walk_unit_fn_exprs_mut};

/// The seven mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutatorKind {
    /// Insert dead-but-compiled statements: shifts text layout, forcing
    /// run-pre nop-padding and PC-relative retargeting to earn their keep.
    InsertStmt,
    /// Delete an expression/assignment/declaration statement: shrinks
    /// text (nop-tail cases) or breaks the post build (compile kill).
    DeleteStmt,
    /// Tweak an integer literal: single-immediate byte differences the
    /// differ must detect and the packager must carry.
    TweakConst,
    /// Swap a binary operator for a same-shape alternative: minimal
    /// codegen deltas (often one opcode byte).
    SwapOp,
    /// Clone a function (optionally retargeting one call site): new
    /// symbols the packager must export and run-pre must not confuse
    /// with the original.
    CloneFn,
    /// Rename a `static` function and every same-unit reference: local
    /// symbol churn, the kallsyms-ambiguity path (§4.1).
    RenameFn,
    /// Edit a global initialiser: must be *refused* by the data-semantics
    /// gate (Table 1) — a mutant that sails through is an oracle finding.
    EditData,
}

impl MutatorKind {
    /// All mutators, in serialization order.
    pub const ALL: [MutatorKind; 7] = [
        MutatorKind::InsertStmt,
        MutatorKind::DeleteStmt,
        MutatorKind::TweakConst,
        MutatorKind::SwapOp,
        MutatorKind::CloneFn,
        MutatorKind::RenameFn,
        MutatorKind::EditData,
    ];

    /// The stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            MutatorKind::InsertStmt => "insert-stmt",
            MutatorKind::DeleteStmt => "delete-stmt",
            MutatorKind::TweakConst => "tweak-const",
            MutatorKind::SwapOp => "swap-op",
            MutatorKind::CloneFn => "clone-fn",
            MutatorKind::RenameFn => "rename-fn",
            MutatorKind::EditData => "edit-data",
        }
    }

    /// Parses a serialized mutator name.
    pub fn parse(s: &str) -> Option<MutatorKind> {
        MutatorKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Which pipeline feature this mutator stresses (documentation and
    /// per-mutator campaign stats).
    pub fn targets(self) -> &'static str {
        match self {
            MutatorKind::InsertStmt => "text layout shift / nop padding / rel32 retargeting",
            MutatorKind::DeleteStmt => "text shrink / nop tails / post-build kills",
            MutatorKind::TweakConst => "immediate-byte diff detection",
            MutatorKind::SwapOp => "single-opcode diff detection",
            MutatorKind::CloneFn => "new-symbol packaging",
            MutatorKind::RenameFn => "local-symbol churn / kallsyms ambiguity",
            MutatorKind::EditData => "data-semantics gate (Table 1)",
        }
    }
}

impl std::fmt::Display for MutatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One serializable mutation: a mutator, a site index (reduced modulo
/// the live candidate count at application time), and a payload that
/// parameterizes the edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mutation {
    /// Which operator.
    pub kind: MutatorKind,
    /// Candidate-site selector (`site % candidate_count` picks the node).
    pub site: u64,
    /// Operator-specific parameter (delta, template choice, suffix…).
    pub payload: i64,
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.kind.name(), self.site, self.payload)
    }
}

impl Mutation {
    /// Parses the `Display` form: `<kind> <site> <payload>`.
    pub fn parse(s: &str) -> Result<Mutation, String> {
        let mut parts = s.split_whitespace();
        let kind = parts
            .next()
            .and_then(MutatorKind::parse)
            .ok_or_else(|| format!("bad mutator in {s:?}"))?;
        let site = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad site in {s:?}"))?;
        let payload = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad payload in {s:?}"))?;
        if parts.next().is_some() {
            return Err(format!("trailing tokens in {s:?}"));
        }
        Ok(Mutation {
            kind,
            site,
            payload,
        })
    }
}

/// Why a mutation could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// The unit has no candidate site for this mutator.
    NoSites(MutatorKind),
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::NoSites(k) => write!(f, "no candidate sites for {k}"),
        }
    }
}

impl std::error::Error for MutateError {}

/// The deterministic xorshift64* generator used across the fuzzer
/// (same recurrence as the kernel's fault plan and the chaos suite).
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Seeds the generator; a zero seed is remapped (xorshift fixpoint).
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng {
            state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed },
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n` (n must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Applies one mutation in place. Site indices reduce modulo the live
/// candidate count, so any `site` value is valid whenever at least one
/// candidate exists.
pub fn apply_mutation(unit: &mut Unit, m: &Mutation) -> Result<(), MutateError> {
    match m.kind {
        MutatorKind::InsertStmt => insert_stmt(unit, m),
        MutatorKind::DeleteStmt => delete_stmt(unit, m),
        MutatorKind::TweakConst => tweak_const(unit, m),
        MutatorKind::SwapOp => swap_op(unit, m),
        MutatorKind::CloneFn => clone_fn(unit, m),
        MutatorKind::RenameFn => rename_fn(unit, m),
        MutatorKind::EditData => edit_data(unit, m),
    }
}

/// Generates a mutant: up to `max_mutations` randomly chosen, applicable
/// mutations on a copy of `unit`. Returns `None` when the unit offers no
/// mutation site at all (e.g. an assembly-only or empty unit).
pub fn generate_mutant(
    unit: &Unit,
    rng: &mut FuzzRng,
    max_mutations: usize,
) -> Option<(Unit, Vec<Mutation>)> {
    let mut work = unit.clone();
    let mut applied = Vec::new();
    // Mostly single mutations; occasional 2–3-long sequences so shrinking
    // has something to do and mutators compose.
    let want = match rng.below(10) {
        0..=6 => 1,
        7 | 8 => 2,
        _ => 3,
    }
    .min(max_mutations.max(1));
    for _ in 0..want {
        let mut placed = false;
        for _attempt in 0..14 {
            let m = Mutation {
                kind: MutatorKind::ALL[rng.below(7) as usize],
                site: rng.next_u64(),
                payload: (rng.below(201) as i64) - 100,
            };
            if apply_mutation(&mut work, &m).is_ok() {
                applied.push(m);
                placed = true;
                break;
            }
        }
        if !placed {
            break;
        }
    }
    if applied.is_empty() {
        None
    } else {
        Some((work, applied))
    }
}

// ---- individual mutators -------------------------------------------------

/// A nonzero delta derived from the payload.
fn delta(payload: i64) -> i64 {
    if payload == 0 {
        1
    } else {
        payload
    }
}

fn insert_stmt(unit: &mut Unit, m: &Mutation) -> Result<(), MutateError> {
    // Pass 1: count insertion slots (every position in every block).
    let mut total: u64 = 0;
    walk_unit_blocks_mut(unit, &mut |block, _| {
        total += block.len() as u64 + 1;
    });
    if total == 0 {
        return Err(MutateError::NoSites(m.kind));
    }
    let target = m.site % total;
    let k = delta(m.payload).rem_euclid(97) + 1;
    let template = m.payload.rem_euclid(3);
    // Pass 2: find the block containing the slot and insert.
    let mut seen: u64 = 0;
    let mut done = false;
    walk_unit_blocks_mut(unit, &mut |block, cx| {
        if done {
            return;
        }
        let slots = block.len() as u64 + 1;
        if target < seen + slots {
            let pos = (target - seen) as usize;
            let stmts = synth_stmts(cx.scope_ints, target, k, template);
            for (i, s) in stmts.into_iter().enumerate() {
                block.insert(pos + i, s);
            }
            done = true;
        }
        seen += slots;
    });
    Ok(())
}

/// Builds the inserted statements: dead-at-runtime but fully compiled,
/// so they perturb code layout without changing workload behaviour.
fn synth_stmts(scope_ints: &[String], slot: u64, k: i64, template: i64) -> Vec<Stmt> {
    let num = |v: i64| Expr::num(v, 1);
    let ident = |n: &str| Expr::new(ExprKind::Ident(n.to_string()), 1);
    let bin = |op, l: Expr, r: Expr| Expr::new(ExprKind::Binary(op, Box::new(l), Box::new(r)), 1);
    if let Some(v) = scope_ints.last().filter(|_| template != 2) {
        if template == 0 {
            // if (v != v) { v = v + k; }  — never taken, real codegen.
            let cond = bin(BinaryOp::Ne, ident(v), ident(v));
            let assign = Stmt::new(
                StmtKind::Assign {
                    target: ident(v),
                    value: bin(BinaryOp::Add, ident(v), num(k)),
                },
                1,
            );
            return vec![Stmt::new(
                StmtKind::If {
                    cond,
                    then_body: vec![assign],
                    else_body: Vec::new(),
                },
                1,
            )];
        }
        // v = v + k; v = v - k;  — net no-op, two live stores.
        let add = Stmt::new(
            StmtKind::Assign {
                target: ident(v),
                value: bin(BinaryOp::Add, ident(v), num(k)),
            },
            1,
        );
        let sub = Stmt::new(
            StmtKind::Assign {
                target: ident(v),
                value: bin(BinaryOp::Sub, ident(v), num(k)),
            },
            1,
        );
        return vec![add, sub];
    }
    // Self-contained fallback: a scoped local and a never-entered loop.
    // The name carries the slot index so stacked insertions rarely clash
    // (a clash is just a compile kill, which the campaign counts).
    let name = format!("fz{slot}x{k}");
    let decl = Stmt::new(
        StmtKind::Decl {
            name: name.clone(),
            ty: Type::Int,
            is_static: false,
            init: None,
        },
        1,
    );
    let set = Stmt::new(
        StmtKind::Assign {
            target: ident(&name),
            value: num(k),
        },
        1,
    );
    let dec = Stmt::new(
        StmtKind::Assign {
            target: ident(&name),
            value: bin(BinaryOp::Sub, ident(&name), num(1)),
        },
        1,
    );
    let looped = Stmt::new(
        StmtKind::While {
            cond: bin(BinaryOp::Gt, ident(&name), num(k)),
            body: vec![dec],
        },
        1,
    );
    vec![Stmt::new(StmtKind::Block(vec![decl, set, looped]), 1)]
}

fn delete_stmt(unit: &mut Unit, m: &Mutation) -> Result<(), MutateError> {
    let deletable =
        |s: &Stmt| matches!(s.kind, StmtKind::Expr(_) | StmtKind::Assign { .. } | StmtKind::Decl { .. });
    let mut total: u64 = 0;
    walk_unit_blocks_mut(unit, &mut |block, _| {
        total += block.iter().filter(|s| deletable(s)).count() as u64;
    });
    if total == 0 {
        return Err(MutateError::NoSites(m.kind));
    }
    let target = m.site % total;
    let mut seen: u64 = 0;
    let mut done = false;
    walk_unit_blocks_mut(unit, &mut |block, _| {
        if done {
            return;
        }
        for i in 0..block.len() {
            if deletable(&block[i]) {
                if seen == target {
                    block.remove(i);
                    done = true;
                    return;
                }
                seen += 1;
            }
        }
    });
    Ok(())
}

fn tweak_const(unit: &mut Unit, m: &Mutation) -> Result<(), MutateError> {
    let mut total: u64 = 0;
    walk_unit_fn_exprs_mut(unit, &mut |e| {
        if matches!(e.kind, ExprKind::Num(_)) {
            total += 1;
        }
    });
    if total == 0 {
        return Err(MutateError::NoSites(m.kind));
    }
    let target = m.site % total;
    let d = delta(m.payload);
    let mut seen: u64 = 0;
    walk_unit_fn_exprs_mut(unit, &mut |e| {
        if let ExprKind::Num(v) = &mut e.kind {
            if seen == target {
                let mut nv = v.wrapping_add(d);
                if nv == i64::MIN {
                    nv += 1;
                }
                *v = nv;
            }
            seen += 1;
        }
    });
    Ok(())
}

/// Same-precedence substitutes for each operator (parenthesization of
/// the rendered mutant is unchanged, so the textual diff stays minimal).
fn op_alternatives(op: BinaryOp) -> &'static [BinaryOp] {
    match op {
        BinaryOp::Add => &[BinaryOp::Sub],
        BinaryOp::Sub => &[BinaryOp::Add],
        BinaryOp::Mul => &[BinaryOp::Div, BinaryOp::Mod],
        BinaryOp::Div => &[BinaryOp::Mul, BinaryOp::Mod],
        BinaryOp::Mod => &[BinaryOp::Div, BinaryOp::Mul],
        BinaryOp::BitAnd => &[BinaryOp::BitOr, BinaryOp::BitXor],
        BinaryOp::BitOr => &[BinaryOp::BitAnd, BinaryOp::BitXor],
        BinaryOp::BitXor => &[BinaryOp::BitAnd, BinaryOp::BitOr],
        BinaryOp::Shl => &[BinaryOp::Shr],
        BinaryOp::Shr => &[BinaryOp::Shl],
        BinaryOp::Eq => &[BinaryOp::Ne],
        BinaryOp::Ne => &[BinaryOp::Eq],
        BinaryOp::Lt => &[BinaryOp::Le, BinaryOp::Ge],
        BinaryOp::Le => &[BinaryOp::Lt, BinaryOp::Gt],
        BinaryOp::Gt => &[BinaryOp::Ge, BinaryOp::Le],
        BinaryOp::Ge => &[BinaryOp::Gt, BinaryOp::Lt],
        BinaryOp::LAnd => &[BinaryOp::LOr],
        BinaryOp::LOr => &[BinaryOp::LAnd],
    }
}

fn swap_op(unit: &mut Unit, m: &Mutation) -> Result<(), MutateError> {
    let mut total: u64 = 0;
    walk_unit_fn_exprs_mut(unit, &mut |e| {
        if matches!(e.kind, ExprKind::Binary(..)) {
            total += 1;
        }
    });
    if total == 0 {
        return Err(MutateError::NoSites(m.kind));
    }
    let target = m.site % total;
    let choice = m.payload.unsigned_abs();
    let mut seen: u64 = 0;
    walk_unit_fn_exprs_mut(unit, &mut |e| {
        if let ExprKind::Binary(op, ..) = &mut e.kind {
            if seen == target {
                let alts = op_alternatives(*op);
                *op = alts[(choice % alts.len() as u64) as usize];
            }
            seen += 1;
        }
    });
    Ok(())
}

fn clone_fn(unit: &mut Unit, m: &Mutation) -> Result<(), MutateError> {
    let fn_indices: Vec<usize> = unit
        .items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| matches!(it, FileItem::Func(_)).then_some(i))
        .collect();
    if fn_indices.is_empty() {
        return Err(MutateError::NoSites(m.kind));
    }
    let idx = fn_indices[(m.site % fn_indices.len() as u64) as usize];
    let FileItem::Func(orig) = &unit.items[idx] else {
        unreachable!("filtered to functions");
    };
    let base_name = orig.name.clone();
    let clone_name = format!("{base_name}_fz{}", m.payload.rem_euclid(90) + 10);
    let mut cloned = orig.clone();
    cloned.name = clone_name.clone();
    // Retarget the first direct call to the original (anywhere in the
    // unit) at the clone, so the clone is live; without call sites the
    // clone still exercises the new-symbol packaging path.
    let mut retargeted = false;
    for item in &mut unit.items {
        if retargeted {
            break;
        }
        if let FileItem::Func(f) = item {
            crate::visit::walk_stmts_exprs_mut(&mut f.body, &mut |e| {
                if retargeted {
                    return;
                }
                if let ExprKind::Call { callee, .. } = &mut e.kind {
                    if let ExprKind::Ident(n) = &mut callee.kind {
                        if *n == base_name {
                            *n = clone_name.clone();
                            retargeted = true;
                        }
                    }
                }
            });
        }
    }
    unit.items.insert(idx + 1, FileItem::Func(cloned));
    Ok(())
}

fn rename_fn(unit: &mut Unit, m: &Mutation) -> Result<(), MutateError> {
    let static_fns: Vec<usize> = unit
        .items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| match it {
            FileItem::Func(f) if f.is_static => Some(i),
            _ => None,
        })
        .collect();
    if static_fns.is_empty() {
        return Err(MutateError::NoSites(m.kind));
    }
    let idx = static_fns[(m.site % static_fns.len() as u64) as usize];
    let FileItem::Func(f) = &unit.items[idx] else {
        unreachable!("filtered to functions");
    };
    let old = f.name.clone();
    let new = format!("{old}_r{}", m.payload.rem_euclid(90) + 10);
    let mut rename = |e: &mut Expr| {
        if let ExprKind::Ident(n) = &mut e.kind {
            if *n == old {
                *n = new.clone();
            }
        }
    };
    for item in &mut unit.items {
        match item {
            FileItem::Func(func) => {
                if func.name == old {
                    func.name = new.clone();
                }
                crate::visit::walk_stmts_exprs_mut(&mut func.body, &mut rename);
            }
            FileItem::Global(g) => {
                // Ops tables hold function addresses in initialisers.
                match &mut g.init {
                    Some(Init::Scalar(e)) => walk_expr_mut(e, &mut rename),
                    Some(Init::List(items)) => {
                        for e in items {
                            walk_expr_mut(e, &mut rename);
                        }
                    }
                    None => {}
                }
            }
            FileItem::Hook { func, .. } => {
                if *func == old {
                    *func = new.clone();
                }
            }
            FileItem::Struct(_) | FileItem::Extern { .. } => {}
        }
    }
    Ok(())
}

fn edit_data(unit: &mut Unit, m: &Mutation) -> Result<(), MutateError> {
    let candidates: Vec<usize> = unit
        .items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| match it {
            FileItem::Global(g) if g.init.is_some() => Some(i),
            _ => None,
        })
        .collect();
    if candidates.is_empty() {
        return Err(MutateError::NoSites(m.kind));
    }
    let idx = candidates[(m.site % candidates.len() as u64) as usize];
    let FileItem::Global(g) = &mut unit.items[idx] else {
        unreachable!("filtered to globals");
    };
    let d = delta(m.payload);
    let tweak_expr = |e: &mut Expr| match &mut e.kind {
        ExprKind::Num(v) => {
            let mut nv = v.wrapping_add(d);
            if nv == i64::MIN {
                nv += 1;
            }
            *v = nv;
        }
        ExprKind::Str(bytes) => {
            if bytes.is_empty() {
                bytes.push(b'x');
            } else {
                let i = (d.unsigned_abs() as usize) % bytes.len();
                // Stay in the printable range the pretty-printer keeps.
                bytes[i] = b'a' + ((bytes[i].wrapping_add(1)) % 26);
            }
        }
        _ => {}
    };
    match g.init.as_mut().expect("filtered to initialised globals") {
        Init::Scalar(e) => tweak_expr(e),
        Init::List(items) => {
            if items.is_empty() {
                items.push(Expr::num(d, g.line));
            } else {
                let i = (m.payload.unsigned_abs() as usize) % items.len();
                tweak_expr(&mut items[i]);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;
    use crate::pretty::pretty_unit;

    const SRC: &str = "static int debug;\n\
        int table[3] = {10, 20, 30};\n\
        static int helper(int v) {\n\
            return v * 2 + 1;\n\
        }\n\
        int entry(int a) {\n\
            int x;\n\
            x = helper(a) + table[1];\n\
            if (x > 5) {\n\
                x = x - debug;\n\
            }\n\
            return x;\n\
        }\n";

    fn unit() -> Unit {
        parse_unit("t.kc", SRC).unwrap()
    }

    #[test]
    fn mutation_serialization_roundtrips() {
        for kind in MutatorKind::ALL {
            let m = Mutation {
                kind,
                site: 12345,
                payload: -17,
            };
            assert_eq!(Mutation::parse(&m.to_string()).unwrap(), m);
        }
        assert!(Mutation::parse("bogus 1 2").is_err());
        assert!(Mutation::parse("tweak-const 1").is_err());
    }

    #[test]
    fn every_mutator_applies_and_replays_identically() {
        for (i, kind) in MutatorKind::ALL.into_iter().enumerate() {
            let m = Mutation {
                kind,
                site: 7 + i as u64,
                payload: 13,
            };
            let mut a = unit();
            apply_mutation(&mut a, &m).unwrap();
            let mut b = unit();
            apply_mutation(&mut b, &m).unwrap();
            assert_eq!(pretty_unit(&a), pretty_unit(&b), "{kind} must replay");
            assert_ne!(pretty_unit(&a), pretty_unit(&unit()), "{kind} must change the unit");
            // The mutant must still be parseable source.
            parse_unit("t.kc", &pretty_unit(&a)).expect("mutant parses");
        }
    }

    #[test]
    fn rename_updates_every_reference() {
        let mut u = unit();
        apply_mutation(
            &mut u,
            &Mutation {
                kind: MutatorKind::RenameFn,
                site: 1, // helper is the second... site % 1 static fn set
                payload: 3,
            },
        )
        .unwrap();
        let printed = pretty_unit(&u);
        // `helper` has exactly one static fn... debug is a global. The
        // static fn set here is {helper}; every call site must follow.
        assert!(!printed.contains("helper(a)"), "{printed}");
        assert!(printed.contains("helper_r13(a)"), "{printed}");
    }

    #[test]
    fn generate_mutant_is_deterministic() {
        let u = unit();
        let (m1, s1) = generate_mutant(&u, &mut FuzzRng::new(42), 3).unwrap();
        let (m2, s2) = generate_mutant(&u, &mut FuzzRng::new(42), 3).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(pretty_unit(&m1), pretty_unit(&m2));
        let (m3, _) = generate_mutant(&u, &mut FuzzRng::new(43), 3).unwrap();
        // Overwhelmingly likely to differ.
        assert_ne!(pretty_unit(&m1), pretty_unit(&m3));
    }

    #[test]
    fn edit_data_touches_only_initialisers() {
        let mut u = unit();
        apply_mutation(
            &mut u,
            &Mutation {
                kind: MutatorKind::EditData,
                site: 1,
                payload: 5,
            },
        )
        .unwrap();
        let printed = pretty_unit(&u);
        assert!(printed.contains("table[3] = {"));
        assert_ne!(printed, pretty_unit(&unit()));
    }
}
