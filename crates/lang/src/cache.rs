//! The incremental build cache.
//!
//! `ksplice-create` builds the kernel tree twice per update (paper §3,
//! Figure 1) and the evaluation driver does so for every corpus entry —
//! yet between any two of those builds almost every compilation unit is
//! byte-identical input: same source, same headers, same [`Options`].
//! [`BuildCache`] memoises per-unit [`Object`]s behind a content-addressed
//! key so the *post* build recompiles only the units a patch touches and
//! the unchanged base tree is compiled exactly once per process.
//!
//! Keying: a hand-rolled 64-bit FNV-1a fingerprint over length-prefixed
//! fields — the unit's path and source, every header the unit can see
//! (`.kc` units see the tree's `include/` headers; `.ks` assembly units
//! see none), and the codegen-relevant [`Options`] fields. Any edit to
//! any of those inputs changes the fingerprint and misses the cache, so
//! a cached build is byte-identical to a cold build — the correctness
//! bar, because pre-post differencing and run-pre matching consume these
//! bytes.
//!
//! The cache is shareable across threads (`&BuildCache`): the parallel
//! evaluation driver hands one cache to every worker so the first worker
//! to compile a unit pays for it and the rest hit. Capacity is bounded;
//! the least-recently-used entry is evicted when full.

use std::collections::HashMap;
use std::sync::Mutex;

use ksplice_object::{Object, ObjectSet};

use crate::Options;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher over length-prefixed fields.
///
/// Length prefixes keep adjacent fields from concatenating ambiguously
/// (`("ab","c")` and `("a","bc")` hash differently).
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The empty fingerprint.
    pub fn new() -> Fingerprint {
        Fingerprint(FNV_OFFSET)
    }

    /// Folds raw bytes into the hash.
    fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds one length-prefixed field.
    pub fn field(&mut self, bytes: &[u8]) -> &mut Fingerprint {
        self.write_bytes(&(bytes.len() as u64).to_le_bytes());
        self.write_bytes(bytes);
        self
    }

    /// Folds a string field.
    pub fn str_field(&mut self, s: &str) -> &mut Fingerprint {
        self.field(s.as_bytes())
    }

    /// Folds a `u64` field.
    pub fn u64_field(&mut self, v: u64) -> &mut Fingerprint {
        self.write_bytes(&v.to_le_bytes());
        self
    }

    /// The finished 64-bit key.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

/// Fingerprints the codegen-relevant [`Options`] fields.
pub fn options_fingerprint(opt: &Options) -> u64 {
    let mut fp = Fingerprint::new();
    fp.u64_field(opt.opt_level as u64)
        .u64_field(opt.function_sections as u64)
        .u64_field(opt.data_sections as u64)
        .u64_field(opt.cc_version as u64);
    fp.finish()
}

/// Per-build cache traffic: how one `build_tree_cached` call fared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Units served from the cache.
    pub hits: u64,
    /// Units compiled because no cached object existed.
    pub misses: u64,
    /// Entries evicted (capacity pressure) while storing this build's
    /// objects.
    pub evictions: u64,
}

impl BuildStats {
    /// Units actually compiled — the cost a cold build pays for every
    /// unit and a warm build pays only for invalidated ones.
    pub fn units_compiled(&self) -> u64 {
        self.misses
    }

    /// Folds another build's traffic into this one.
    pub fn absorb(&mut self, other: BuildStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

struct Entry {
    object: Object,
    last_used: u64,
}

struct ImageEntry {
    set: ObjectSet,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    /// Whole-image memoization: a finished [`ObjectSet`] per image
    /// fingerprint (the set of unit content hashes plus options — see
    /// `build_tree_image_cached`). Rebuilding an unchanged tree is the
    /// pipeline's single most repeated operation (`ksplice-create`
    /// rebuilds the same pre tree for every update it packages), and an
    /// image hit skips even the per-unit cache traffic.
    images: HashMap<u64, ImageEntry>,
    clock: u64,
    totals: BuildStats,
}

/// Whole images kept (LRU). Images are big — a handful covers the
/// pipeline's working set (the base tree under each compiler).
const IMAGE_CAPACITY: usize = 32;

/// A content-addressed, thread-safe, LRU-bounded cache of compiled
/// per-unit objects. See the module docs for the keying discipline.
pub struct BuildCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// Default capacity: comfortably above the whole evaluation working set
/// (base tree under two option sets plus every patched unit variant).
const DEFAULT_CAPACITY: usize = 4096;

impl BuildCache {
    /// A cache with the default capacity.
    pub fn new() -> BuildCache {
        BuildCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` unit objects (minimum 1).
    pub fn with_capacity(capacity: usize) -> BuildCache {
        BuildCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                images: HashMap::new(),
                clock: 0,
                totals: BuildStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking compile in another worker must not wedge the whole
        // evaluation; the map itself is never left half-written.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a fingerprint, refreshing its recency on hit.
    pub fn lookup(&self, key: u64) -> Option<Object> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let found = inner.map.get_mut(&key).map(|entry| {
            entry.last_used = clock;
            entry.object.clone()
        });
        match found {
            Some(object) => {
                inner.totals.hits += 1;
                Some(object)
            }
            None => {
                inner.totals.misses += 1;
                None
            }
        }
    }

    /// Stores a compiled object, evicting the least-recently-used entry
    /// when at capacity. Returns how many entries were evicted (0 or 1).
    pub fn store(&self, key: u64, object: Object) -> u64 {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let mut evicted = 0;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                evicted = 1;
                inner.totals.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                object,
                last_used: clock,
            },
        );
        evicted
    }

    /// Looks up a whole-image fingerprint, refreshing its recency on
    /// hit. Image traffic is deliberately kept out of [`BuildStats`]
    /// totals: a hit is reported by the caller as one unit-hit per
    /// object so downstream accounting reads exactly like a fully warm
    /// per-unit build.
    pub fn lookup_image(&self, key: u64) -> Option<ObjectSet> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.images.get_mut(&key).map(|entry| {
            entry.last_used = clock;
            entry.set.clone()
        })
    }

    /// Stores a finished image, evicting the least-recently-used one at
    /// capacity.
    pub fn store_image(&self, key: u64, set: ObjectSet) {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.images.contains_key(&key) && inner.images.len() >= IMAGE_CAPACITY {
            if let Some(&victim) = inner
                .images
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.images.remove(&victim);
            }
        }
        inner.images.insert(
            key,
            ImageEntry {
                set,
                last_used: clock,
            },
        );
    }

    /// Number of cached whole images.
    pub fn image_count(&self) -> usize {
        self.lock().images.len()
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss/evict totals across every build that used this
    /// cache.
    pub fn stats(&self) -> BuildStats {
        self.lock().totals
    }

    /// Drops every entry (totals are kept — they are lifetime counters).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.images.clear();
    }
}

impl Default for BuildCache {
    fn default() -> BuildCache {
        BuildCache::new()
    }
}

impl std::fmt::Debug for BuildCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("BuildCache")
            .field("len", &inner.map.len())
            .field("capacity", &self.capacity)
            .field("totals", &inner.totals)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksplice_object::Object;

    fn obj(name: &str) -> Object {
        Object::new(name)
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a reference values for raw byte streams.
        let mut fp = Fingerprint::new();
        fp.write_bytes(b"");
        assert_eq!(fp.finish(), 0xcbf2_9ce4_8422_2325);
        let mut fp = Fingerprint::new();
        fp.write_bytes(b"a");
        assert_eq!(fp.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut fp = Fingerprint::new();
        fp.write_bytes(b"foobar");
        assert_eq!(fp.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn length_prefix_disambiguates_fields() {
        let mut a = Fingerprint::new();
        a.str_field("ab").str_field("c");
        let mut b = Fingerprint::new();
        b.str_field("a").str_field("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn options_fingerprint_sees_every_knob() {
        let base = Options::pre_post();
        let fp = options_fingerprint(&base);
        for variant in [
            Options {
                opt_level: 0,
                ..base.clone()
            },
            Options {
                function_sections: !base.function_sections,
                ..base.clone()
            },
            Options {
                data_sections: !base.data_sections,
                ..base.clone()
            },
            Options {
                cc_version: base.cc_version + 1,
                ..base.clone()
            },
        ] {
            assert_ne!(fp, options_fingerprint(&variant), "{variant:?}");
        }
    }

    #[test]
    fn lookup_hit_and_miss_accounting() {
        let cache = BuildCache::new();
        assert!(cache.lookup(1).is_none());
        cache.store(1, obj("a"));
        assert!(cache.lookup(1).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let cache = BuildCache::with_capacity(2);
        cache.store(1, obj("a"));
        cache.store(2, obj("b"));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1).is_some());
        assert_eq!(cache.store(3, obj("c")), 1);
        assert!(cache.lookup(2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn restore_of_existing_key_does_not_evict() {
        let cache = BuildCache::with_capacity(2);
        cache.store(1, obj("a"));
        cache.store(2, obj("b"));
        assert_eq!(cache.store(2, obj("b2")), 0);
        assert_eq!(cache.len(), 2);
    }
}
