//! The `kc` abstract syntax tree.

/// A `kc` type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 64-bit signed integer, the universal scalar.
    Int,
    /// 8-bit unsigned integer; only meaningful behind pointers and in
    /// arrays (scalar `byte` variables occupy a full word slot).
    Byte,
    /// Pointer to an element type.
    Ptr(Box<Type>),
    /// A named struct (layout comes from the unit's [`StructDef`]s).
    Struct(String),
    /// Fixed-size array; file scope and local scope.
    Array(Box<Type>, u64),
}

impl Type {
    /// Convenience pointer constructor.
    pub fn ptr(elem: Type) -> Type {
        Type::Ptr(Box::new(elem))
    }

    /// True for `int`, `byte` and pointers — values that fit a register.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Byte | Type::Ptr(_))
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit logical AND.
    LAnd,
    /// Short-circuit logical OR.
    LOr,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    BitNot,
    /// Logical not `!`.
    LNot,
    /// Pointer dereference `*`.
    Deref,
    /// Address-of `&`.
    Addr,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

impl Expr {
    pub fn new(kind: ExprKind, line: u32) -> Expr {
        Expr { kind, line }
    }

    /// A number literal, for synthesised code.
    pub fn num(v: i64, line: u32) -> Expr {
        Expr::new(ExprKind::Num(v), line)
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    Num(i64),
    /// String literal (NUL terminator added by codegen); type `byte*`.
    Str(Vec<u8>),
    Ident(String),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Function call; a direct call when the callee is an identifier bound
    /// to a function, otherwise an indirect call through a value.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    /// `base[index]`, scaled by the element size.
    Index(Box<Expr>, Box<Expr>),
    /// `value.field`.
    Field(Box<Expr>, String),
    /// `pointer->field`.
    PField(Box<Expr>, String),
    /// `sizeof(type)`, a compile-time constant.
    Sizeof(Type),
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: u32,
}

impl Stmt {
    pub fn new(kind: StmtKind, line: u32) -> Stmt {
        Stmt { kind, line }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// Local declaration, possibly `static` (function-lifetime storage in
    /// a data section, producing a local data symbol).
    Decl {
        name: String,
        ty: Type,
        is_static: bool,
        init: Option<Expr>,
    },
    /// Expression evaluated for effect.
    Expr(Expr),
    /// `target = value` where target is an lvalue.
    Assign {
        target: Expr,
        value: Expr,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Vec<Stmt>),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<(String, Type)>,
    pub line: u32,
}

/// Initialiser forms for globals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Init {
    Scalar(Expr),
    List(Vec<Expr>),
}

/// A file-scope variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    pub name: String,
    pub ty: Type,
    /// File-scope `static`: the symbol gets local binding.
    pub is_static: bool,
    pub init: Option<Init>,
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub body: Vec<Stmt>,
    pub is_static: bool,
    /// The `inline` hint. The optimiser may inline functions without it
    /// (paper §4.2) — the keyword only raises the size budget.
    pub is_inline: bool,
    pub line: u32,
}

/// Ksplice custom-code hook registrations (paper §5.3): file-scope macro
/// calls that record a function pointer in a special section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookKind {
    /// Run while the machine is stopped, when the update is applied.
    Apply,
    /// Setup before the machine is stopped.
    PreApply,
    /// Cleanup after the machine resumes.
    PostApply,
    /// Run while the machine is stopped, when the update is reversed.
    Reverse,
    PreReverse,
    PostReverse,
}

impl HookKind {
    /// The special section this hook's function pointer is recorded in.
    pub fn section_name(self) -> &'static str {
        match self {
            HookKind::Apply => ".ksplice.apply",
            HookKind::PreApply => ".ksplice.pre_apply",
            HookKind::PostApply => ".ksplice.post_apply",
            HookKind::Reverse => ".ksplice.reverse",
            HookKind::PreReverse => ".ksplice.pre_reverse",
            HookKind::PostReverse => ".ksplice.post_reverse",
        }
    }

    /// The file-scope macro name, e.g. `ksplice_apply`.
    pub fn macro_name(self) -> &'static str {
        match self {
            HookKind::Apply => "ksplice_apply",
            HookKind::PreApply => "ksplice_pre_apply",
            HookKind::PostApply => "ksplice_post_apply",
            HookKind::Reverse => "ksplice_reverse",
            HookKind::PreReverse => "ksplice_pre_reverse",
            HookKind::PostReverse => "ksplice_post_reverse",
        }
    }

    /// All hook kinds.
    pub const ALL: [HookKind; 6] = [
        HookKind::Apply,
        HookKind::PreApply,
        HookKind::PostApply,
        HookKind::Reverse,
        HookKind::PreReverse,
        HookKind::PostReverse,
    ];
}

/// One file-scope item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileItem {
    Struct(StructDef),
    Global(Global),
    Func(Function),
    /// `ksplice_apply(fn);`-style hook registration.
    Hook {
        kind: HookKind,
        func: String,
        line: u32,
    },
    /// `extern` declaration: registers a name as external, no code.
    /// `is_func` records whether a parameter list was present — an extern
    /// function's bare name denotes its address, an extern variable's
    /// denotes its value.
    Extern {
        name: String,
        is_func: bool,
        line: u32,
    },
}

/// A parsed compilation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// Unit path, e.g. `fs/exec.kc`.
    pub name: String,
    pub items: Vec<FileItem>,
}

impl Unit {
    /// Iterates the unit's function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            FileItem::Func(f) => Some(f),
            _ => None,
        })
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }

    /// Iterates the unit's struct definitions.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.items.iter().filter_map(|i| match i {
            FileItem::Struct(s) => Some(s),
            _ => None,
        })
    }

    /// Iterates the unit's file-scope variables.
    pub fn globals(&self) -> impl Iterator<Item = &Global> {
        self.items.iter().filter_map(|i| match i {
            FileItem::Global(g) => Some(g),
            _ => None,
        })
    }
}
