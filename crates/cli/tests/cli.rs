//! Integration tests driving the `ksplice` binary itself.

use std::process::Command;

fn ksplice() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ksplice"))
}

#[test]
fn usage_on_no_args() {
    let out = ksplice().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn list_shows_the_corpus() {
    let out = ksplice().arg("list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CVE-2006-2451"));
    assert!(text.contains("CVE-2005-2709"));
    // Header plus 64 entries.
    assert_eq!(text.lines().count(), 65);
}

#[test]
fn demo_defeats_the_default_exploit() {
    let out = ksplice().arg("demo").output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SUCCEEDS (vulnerable)"));
    assert!(text.contains("DEFEATED"));
}

#[test]
fn watched_demo_commits_and_undoes() {
    let out = ksplice()
        .args(["demo", "--watch-rounds", "2", "--undo"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("watch.start"));
    assert!(text.contains("committed after 2 healthy watch round(s)"));
    assert!(text.contains("site(s) restored"));
    assert!(text.contains("reversed"));
}

#[test]
fn watched_demo_rolls_back_on_failing_probe() {
    // A probe demanding uid 1000 from a fresh thread (uid 0) always
    // fails, so quarantine must auto-roll-back and exit nonzero.
    let out = ksplice()
        .args(["demo", "--watch-rounds", "1", "--probe", "sys_getuid()=1000"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("watch.auto_rollback"));
    assert!(text.contains("rolled-back"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed quarantine"));
}

#[test]
fn status_stacks_updates_and_reverses_mid_stack() {
    let out = ksplice()
        .args(["status", "--undo", "CVE-2005-0750", "--quiet"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CVE-2006-2451  committed"));
    assert!(text.contains("CVE-2005-0750  reversed"));
    assert!(text.contains("CVE-2005-4605  committed"));
    assert!(text.contains("site(s) restored"));
}

#[test]
fn status_table_tracks_quarantine_to_committed() {
    // Each update passes through quarantined (watch window) before the
    // table reports it committed; the watch trace shows the transition.
    let out = ksplice()
        .args(["status", "--watch-rounds", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for id in ["CVE-2006-2451", "CVE-2005-0750", "CVE-2005-4605"] {
        assert!(text.contains("watch.start"), "missing watch window");
        assert!(
            text.contains(&format!("{id}  committed")),
            "{id} not committed in:\n{text}"
        );
    }
    assert_eq!(text.matches("watch.committed").count(), 3);
    // Nothing was reversed or left in quarantine.
    assert!(!text.contains("  quarantined"));
    assert!(!text.contains("rolled-back"));
}

#[test]
fn status_table_tracks_rolled_back_updates() {
    // A probe demanding uid 1000 from a fresh thread (uid 0) fails every
    // round, so the first update is auto-reversed out of quarantine and
    // the state table records it as rolled-back.
    let out = ksplice()
        .args([
            "status",
            "--quiet",
            "--probe",
            "sys_getuid()=1000",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("CVE-2006-2451  rolled-back"),
        "table missing rolled-back row:\n{text}"
    );
    assert!(!text.contains("committed"), "apply loop continued past the rollback");
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed quarantine"));
}

#[test]
fn create_and_inspect_roundtrip() {
    let dir = std::env::temp_dir().join(format!("ksplice-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tree_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../eval/tree");
    let patch_path = dir.join("fix.patch");
    std::fs::write(
        &patch_path,
        "--- a/drivers/dst_ca.kc\n\
         +++ b/drivers/dst_ca.kc\n\
         @@ -6,7 +6,7 @@\n \n int ca_get_slot_info(int slot) {\n     debug = debug + 1;\n\
         -    if (slot > 7) {\n+    if (slot < 0 || slot > 7) {\n         return 0 - 22;\n     }\n     return ca_messages[slot];\n",
    )
    .unwrap();
    let pack_path = dir.join("u.kupd");
    let out = ksplice()
        .args([
            "create",
            "--tree",
            tree_dir,
            "--patch",
            patch_path.to_str().unwrap(),
            "--id",
            "cli-test",
            "--out",
            pack_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(pack_path.exists());

    let out = ksplice()
        .args(["inspect", pack_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("update: cli-test"));
    assert!(text.contains("replaces ca_get_slot_info"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn create_rejects_nonapplying_patch() {
    let dir = std::env::temp_dir().join(format!("ksplice-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tree_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../eval/tree");
    let patch_path = dir.join("bad.patch");
    std::fs::write(
        &patch_path,
        "--- a/drivers/dst_ca.kc\n+++ b/drivers/dst_ca.kc\n@@ -1,1 +1,1 @@\n-no such line\n+whatever\n",
    )
    .unwrap();
    let out = ksplice()
        .args([
            "create",
            "--tree",
            tree_dir,
            "--patch",
            patch_path.to_str().unwrap(),
            "--id",
            "bad",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_timeline_is_valid_chrome_trace_json() {
    use ksplice_core::trace::{parse_json_object, JsonValue};

    let dir = std::env::temp_dir().join(format!("ksplice-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("demo.jsonl");
    let trace = dir.join("demo.trace.json");

    let out = ksplice()
        .args([
            "--trace",
            jsonl.to_str().unwrap(),
            "--quiet",
            "demo",
            "--cve",
            "CVE-2005-1263",
            "--watch-rounds",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = ksplice()
        .args([
            "report",
            jsonl.to_str().unwrap(),
            "--timeline",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The acceptance bar: the file parses as Chrome trace JSON — a top
    // level object holding a traceEvents array of complete events.
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = parse_json_object(&text).expect("timeline is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut names = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).expect("ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph:?}");
        assert!(ev.get("ts").and_then(JsonValue::as_u64).is_some());
        if ph == "X" {
            // Complete (span) events carry a duration and their span id.
            assert!(ev.get("dur").and_then(JsonValue::as_u64).unwrap_or(0) >= 1);
            assert!(ev
                .get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(JsonValue::as_u64)
                .is_some());
            names.push(ev.get("name").and_then(JsonValue::as_str).unwrap().to_string());
        }
    }
    // The span hierarchy the demo lifecycle is expected to produce.
    for expected in ["create", "update", "preflight", "apply", "apply.attempt", "watch"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing span `{expected}` in {names:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_is_deterministic_across_processes() {
    // The CI determinism smoke in binary form: the same seed and config
    // must produce byte-identical JSON reports in separate processes.
    let run = || {
        let out = ksplice()
            .args([
                "--quiet",
                "profile",
                "--cve",
                "CVE-2005-1263",
                "--rounds",
                "8",
                "--seed",
                "7",
                "--json",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let first = run();
    assert!(first.contains("\"migrated\""), "unexpected report: {first}");
    assert_eq!(first, run());
}
