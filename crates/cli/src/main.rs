//! `ksplice` — the command-line face of the reproduction.
//!
//! Mirrors the paper's §5 workflow on the simulated kernel:
//!
//! ```text
//! ksplice create --tree <dir> --patch <file> --id <name> [--accept-data-changes] [--out pack.kupd]
//! ksplice inspect <pack.kupd>
//! ksplice demo   [--cve <id>]           # boot, exploit, hot-patch, re-exploit
//! ksplice eval   [--stress <rounds>]    # the full §6 evaluation
//! ksplice list                          # the 64-CVE corpus
//! ```
//!
//! `create` reads an on-disk source tree (files with `.kc`/`.ks`/`.kh`
//! suffixes), applies a unified diff, performs the pre and post builds,
//! and writes the update pack — the equivalent of the paper's
//! `ksplice-create --patch=prctl ~/src` producing
//! `ksplice-8c4o6u.tar.gz`. Because the "running kernel" here lives
//! inside a process, `demo`/`eval` boot one and apply updates to it live.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ksplice_core::{create_update, ApplyOptions, CreateOptions, Ksplice, UpdatePack};
use ksplice_eval::{base_tree, corpus, run_exploit, run_full_evaluation};
use ksplice_kernel::Kernel;
use ksplice_lang::{Options, SourceTree};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("create") => cmd_create(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!(
                "usage: ksplice <create|inspect|demo|eval|list> [options]\n\
                 \n  create  --tree <dir> --patch <file> --id <name> [--accept-data-changes] [--out <file>]\
                 \n  inspect <pack.kupd>\
                 \n  demo    [--cve <id>]\
                 \n  eval    [--stress <rounds>]\
                 \n  list"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ksplice: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Reads a source tree from disk: every `.kc`/`.ks`/`.kh` file under
/// `root`, keyed by its relative path.
fn read_tree(root: &Path) -> Result<SourceTree, String> {
    let mut tree = SourceTree::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.is_dir() {
                stack.push(path);
            } else if matches!(
                path.extension().and_then(|e| e.to_str()),
                Some("kc") | Some("ks") | Some("kh")
            ) {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .to_string_lossy()
                    .replace('\\', "/");
                let body = std::fs::read_to_string(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                tree.insert(&rel, &body);
            }
        }
    }
    if tree.is_empty() {
        return Err(format!("{}: no .kc/.ks/.kh sources found", root.display()));
    }
    Ok(tree)
}

fn cmd_create(args: &[String]) -> Result<(), String> {
    let tree_dir = flag_value(args, "--tree").ok_or("create: missing --tree <dir>")?;
    let patch_file = flag_value(args, "--patch").ok_or("create: missing --patch <file>")?;
    let id = flag_value(args, "--id").ok_or("create: missing --id <name>")?;
    let out: PathBuf = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("ksplice-{id}.kupd")));
    let accept = args.iter().any(|a| a == "--accept-data-changes");

    let tree = read_tree(Path::new(tree_dir))?;
    let patch = std::fs::read_to_string(patch_file).map_err(|e| format!("{patch_file}: {e}"))?;
    let opts = CreateOptions {
        accept_data_changes: accept,
        ..CreateOptions::default()
    };
    let (pack, _) = create_update(id, &tree, &patch, &opts).map_err(|e| e.to_string())?;
    std::fs::write(&out, pack.to_bytes()).map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "Ksplice update pack written to {} ({} unit(s), {} function(s) replaced, helper {}B / primary {}B)",
        out.display(),
        pack.units.len(),
        pack.replaced_fn_count(),
        pack.helper_size(),
        pack.primary_size()
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("inspect: missing pack file")?;
    let bytes = std::fs::read(file).map_err(|e| format!("{file}: {e}"))?;
    let pack = UpdatePack::parse(&bytes)?;
    println!("update: {}", pack.id);
    for u in &pack.units {
        println!("  unit {}", u.unit);
        for (sec, f) in &u.replaced_fns {
            println!("    replaces {f} ({sec})");
        }
        for s in &u.primary.sections {
            println!("    primary section {} ({} bytes)", s.name, s.size);
        }
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let id = flag_value(args, "--cve").unwrap_or("CVE-2006-2451");
    let case = corpus()
        .into_iter()
        .find(|c| c.id == id)
        .ok_or_else(|| format!("unknown CVE `{id}` (try `ksplice list`)"))?;
    println!("booting the vulnerable kernel...");
    let mut kernel = Kernel::boot(&base_tree(), &Options::distro()).map_err(|e| e.to_string())?;
    if case.exploit.is_some() {
        let worked = run_exploit(&mut kernel, &case) == Some(true);
        println!(
            "exploit for {id}: {}",
            if worked {
                "SUCCEEDS (vulnerable)"
            } else {
                "fails"
            }
        );
    }
    let opts = CreateOptions {
        accept_data_changes: case.needs_custom_code(),
        ..CreateOptions::default()
    };
    let patch = if case.needs_custom_code() {
        case.full_patch_text()
    } else {
        case.patch_text()
    };
    let (pack, _) =
        create_update(case.id, &base_tree(), &patch, &opts).map_err(|e| e.to_string())?;
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .map_err(|e| e.to_string())?;
    println!(
        "hot update applied: {} function(s) replaced, pause {:?}",
        pack.replaced_fn_count(),
        kernel.last_stop_machine.unwrap_or_default()
    );
    if case.exploit.is_some() {
        let worked = run_exploit(&mut kernel, &case) == Some(true);
        println!(
            "exploit for {id}: {}",
            if worked {
                "still succeeds!?"
            } else {
                "DEFEATED"
            }
        );
    }
    println!("Done!");
    Ok(())
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let rounds: u64 = flag_value(args, "--stress")
        .map(|s| s.parse().map_err(|_| "bad --stress value".to_string()))
        .transpose()?
        .unwrap_or(8);
    let report = run_full_evaluation(rounds)?;
    println!("{}", report.render());
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<16} {:>4} {:<12} custom  summary",
        "CVE", "year", "class"
    );
    for c in corpus() {
        println!(
            "{:<16} {:>4} {:<12} {:>6}  {}",
            c.id,
            c.year,
            match c.class {
                ksplice_eval::VulnClass::PrivilegeEscalation => "priv-esc",
                ksplice_eval::VulnClass::InformationDisclosure => "info-leak",
            },
            c.custom
                .as_ref()
                .map(|cc| cc.lines.to_string())
                .unwrap_or_else(|| "-".into()),
            c.summary
        );
    }
    Ok(())
}
