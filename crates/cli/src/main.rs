//! `ksplice` — the command-line face of the reproduction.
//!
//! Mirrors the paper's §5 workflow on the simulated kernel:
//!
//! ```text
//! ksplice create --tree <dir> --patch <file> --id <name> [--accept-data-changes] [--out pack.kupd]
//! ksplice inspect <pack.kupd>
//! ksplice demo   [--cve <id>]           # boot, exploit, hot-patch, re-exploit
//! ksplice eval   [--stress <rounds>] [--jobs <n>]   # the full §6 evaluation
//! ksplice profile [--cve <id>] [--flame <file>]     # sample the hot path pre/post apply
//! ksplice list                          # the 64-CVE corpus
//! ksplice report <trace.jsonl> [--spans] [--timeline <file>]
//! ```
//!
//! Every command accepts the global flags `--trace <path>` (write the
//! structured event stream as JSONL), `--verbose` (show Debug events)
//! and `--quiet` (only Errors). Progress output goes through the
//! human-readable trace sink, so the verbosity flags govern *all* of it
//! uniformly; command *products* (pack listings, the corpus table, the
//! evaluation report) print plainly regardless.
//!
//! `create` reads an on-disk source tree (files with `.kc`/`.ks`/`.kh`
//! suffixes), applies a unified diff, performs the pre and post builds,
//! and writes the update pack — the equivalent of the paper's
//! `ksplice-create --patch=prctl ~/src` producing
//! `ksplice-8c4o6u.tar.gz`. Because the "running kernel" here lives
//! inside a process, `demo`/`eval` boot one and apply updates to it live.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ksplice_core::trace::{
    chrome_trace_json, render_span_tree, Event, HumanSink, JsonlSink, Severity, Stage, Tracer,
    Value,
};
use ksplice_core::{
    create_update_traced, ApplyOptions, CreateOptions, HealthProbe, Ksplice, RetryPolicy,
    SmpConfig, UpdateManager, UpdatePack, WatchPolicy,
};
use ksplice_eval::{base_tree, corpus, quiescence_correlation, run_exploit, run_profile, ProfileConfig};
use ksplice_fleet::{
    build_packset, Fleet, FleetConfig, NetFaults, Outcome, Partition, RolloutOrchestrator,
    RolloutPolicy, SimTransport, VERSION_NAMES,
};
use ksplice_kernel::{Fault, Kernel};
use ksplice_lang::{Options, SourceTree};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = take_flag_value(&mut args, "--trace");
    if trace_path.is_none() && args.iter().any(|a| a == "--trace") {
        eprintln!("ksplice: --trace requires a file path");
        return ExitCode::from(2);
    }
    let verbose = take_flag(&mut args, "--verbose");
    let quiet = take_flag(&mut args, "--quiet");

    let min_severity = if quiet {
        Severity::Error
    } else if verbose {
        Severity::Debug
    } else {
        Severity::Info
    };
    let mut tracer = Tracer::new().with_sink(Box::new(HumanSink::stdout(min_severity)));
    if let Some(path) = &trace_path {
        match JsonlSink::create(Path::new(path)) {
            Ok(sink) => {
                tracer.add_sink(Box::new(sink));
            }
            Err(e) => {
                eprintln!("ksplice: cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let result = match args.first().map(String::as_str) {
        Some("create") => cmd_create(&args[1..], &mut tracer),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("demo") => cmd_demo(&args[1..], &mut tracer),
        Some("eval") => cmd_eval(&args[1..], &mut tracer),
        Some("profile") => cmd_profile(&args[1..], &mut tracer),
        Some("fuzz") => cmd_fuzz(&args[1..], &mut tracer),
        Some("rebase") => cmd_rebase(&args[1..], &mut tracer),
        Some("fleet") => cmd_fleet(&args[1..], &mut tracer),
        Some("status") => cmd_status(&args[1..], &mut tracer),
        Some("list") => cmd_list(),
        Some("report") => cmd_report(&args[1..]),
        _ => {
            eprintln!(
                "usage: ksplice [--trace <file>] [--verbose|--quiet] <create|inspect|demo|eval|profile|fuzz|rebase|fleet|status|list|report> [options]\n\
                 \n  create  --tree <dir> --patch <file> --id <name> [--accept-data-changes] [--out <file>]\
                 \n  inspect <pack.kupd>\
                 \n  demo    [--cve <id>] [--retry-policy <spec>] [--cpus <n>] [--fault <site>]...\
                 \n          [--fault-seed <n>] [--watch-rounds <n>] [--probe <fn(args)=expected>]... [--undo]\
                 \n  eval    [--stress <rounds>] [--jobs <n>] [--retry-policy <spec>] [--cpus <n>]\
                 \n  profile [--cve <id>] [--interval <steps>] [--samples <n>] [--rounds <n>]\
                 \n          [--seed <n>] [--flame <file>] [--json] [--correlate]\
                 \n  fuzz    [--seed <n>] [--mutants <n>] [--workload syscalls|stress|both]\
                 \n          [--jobs <n>] [--cpus <n>] [--emit <dir>] [--replay <dir>]\
                 \n  rebase  [--seed <n>] [--levels D1,D2,...] [--cves <n>] [--jobs <n>]\
                 \n          [--json] [--out <file>]\
                 \n  fleet   [--nodes <n>] [--versions <n>] [--cpus <n>] [--load <threads>]\
                 \n          [--canary <n>] [--growth <n>] [--halt-per-mille <n>] [--jobs <n>]\
                 \n          [--seed <n>] [--transport-seed <n>] [--max-ticks <n>] [--resident]\
                 \n          [--faults drop:PM,dup:PM,corrupt:PM,delay:MIN..MAX]\
                 \n          [--partition FIRST..LAST@FROM..HEAL]... [--poison-version <v>]...\
                 \n  status  [--cve <id>]... [--undo <id>] [--cpus <n>] [--watch-rounds <n>] [--probe <spec>]...\
                 \n  list\
                 \n  report  <trace.jsonl> [--spans] [--timeline <file>]\
                 \n\
                 \n  retry-policy spec: fixed:ATTEMPTS:DELAY | exp:ATTEMPTS:INITIAL:MAX, with\
                 \n  optional :jPCT (jitter) and :cSTEPS (abandon cooldown) modifiers\
                 \n  fault sites (dev): stack-busy:N | module-load:N | corrupt-text[:0xADDR] |\
                 \n  step-jitter:N | probe-fail:N | barrier-stall:N\
                 \n  probe spec: canary call + expected result, e.g. sys_getuid()=1000; with\
                 \n  --watch-rounds the update is quarantined and auto-rolled-back on failure"
            );
            return ExitCode::from(2);
        }
    };
    tracer.flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ksplice: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Removes a boolean flag, returning whether it was present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Removes `name <value>`, returning the value.
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        return None;
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// All values of a repeatable `name <value>` flag, in order.
fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// The `--retry-policy` and `--cpus` flags, or the default schedule on
/// a uniprocessor kernel.
fn retry_policy_arg(args: &[String]) -> Result<ApplyOptions, String> {
    let mut opts = match flag_value(args, "--retry-policy") {
        Some(spec) => ApplyOptions::with_retry(RetryPolicy::parse(spec)?),
        None => ApplyOptions::default(),
    };
    if let Some(n) = flag_value(args, "--cpus") {
        let cpus: u32 = n
            .parse()
            .map_err(|_| format!("--cpus: expected a number, got `{n}`"))?;
        opts.smp = SmpConfig::with_cpus(cpus);
    }
    Ok(opts)
}

/// Progress note: an Info-severity CLI event carrying one message.
fn note(tracer: &mut Tracer, name: &str, msg: String) {
    tracer.emit(Stage::Cli, Severity::Info, name, vec![("msg", msg.into())]);
}

/// Reads a source tree from disk: every `.kc`/`.ks`/`.kh` file under
/// `root`, keyed by its relative path.
fn read_tree(root: &Path) -> Result<SourceTree, String> {
    let mut tree = SourceTree::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.is_dir() {
                stack.push(path);
            } else if matches!(
                path.extension().and_then(|e| e.to_str()),
                Some("kc") | Some("ks") | Some("kh")
            ) {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .to_string_lossy()
                    .replace('\\', "/");
                let body = std::fs::read_to_string(&path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                tree.insert(&rel, &body);
            }
        }
    }
    if tree.is_empty() {
        return Err(format!("{}: no .kc/.ks/.kh sources found", root.display()));
    }
    Ok(tree)
}

fn cmd_create(args: &[String], tracer: &mut Tracer) -> Result<(), String> {
    let tree_dir = flag_value(args, "--tree").ok_or("create: missing --tree <dir>")?;
    let patch_file = flag_value(args, "--patch").ok_or("create: missing --patch <file>")?;
    let id = flag_value(args, "--id").ok_or("create: missing --id <name>")?;
    let out: PathBuf = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("ksplice-{id}.kupd")));
    let accept = args.iter().any(|a| a == "--accept-data-changes");

    let tree = read_tree(Path::new(tree_dir))?;
    let patch = std::fs::read_to_string(patch_file).map_err(|e| format!("{patch_file}: {e}"))?;
    let opts = CreateOptions {
        accept_data_changes: accept,
        ..CreateOptions::default()
    };
    let (pack, _) =
        create_update_traced(id, &tree, &patch, &opts, tracer).map_err(|e| e.to_string())?;
    std::fs::write(&out, pack.to_bytes()).map_err(|e| format!("{}: {e}", out.display()))?;
    note(
        tracer,
        "cli.pack_written",
        format!(
            "Ksplice update pack written to {} ({} unit(s), {} function(s) replaced, helper {}B / primary {}B)",
            out.display(),
            pack.units.len(),
            pack.replaced_fn_count(),
            pack.helper_size(),
            pack.primary_size()
        ),
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("inspect: missing pack file")?;
    let bytes = std::fs::read(file).map_err(|e| format!("{file}: {e}"))?;
    let pack = UpdatePack::parse(&bytes)?;
    println!("update: {}", pack.id);
    for u in &pack.units {
        println!("  unit {}", u.unit);
        for (sec, f) in &u.replaced_fns {
            println!("    replaces {f} ({sec})");
        }
        for s in &u.primary.sections {
            println!("    primary section {} ({} bytes)", s.name, s.size);
        }
    }
    Ok(())
}

fn cmd_demo(args: &[String], tracer: &mut Tracer) -> Result<(), String> {
    let id = flag_value(args, "--cve").unwrap_or("CVE-2006-2451");
    let apply_opts = retry_policy_arg(args)?;
    let watch_rounds: Option<u32> = flag_value(args, "--watch-rounds")
        .map(|s| s.parse().map_err(|_| "bad --watch-rounds value".to_string()))
        .transpose()?;
    let probe_specs = flag_values(args, "--probe");
    let do_undo = args.iter().any(|a| a == "--undo");
    let watched = watch_rounds.is_some() || !probe_specs.is_empty();
    let faults: Vec<Fault> = flag_values(args, "--fault")
        .into_iter()
        .map(Fault::parse)
        .collect::<Result<_, _>>()?;
    let fault_seed: Option<u64> = flag_value(args, "--fault-seed")
        .map(|s| s.parse().map_err(|_| "bad --fault-seed value".to_string()))
        .transpose()?;
    let case = corpus()
        .into_iter()
        .find(|c| c.id == id)
        .ok_or_else(|| format!("unknown CVE `{id}` (try `ksplice list`)"))?;
    note(
        tracer,
        "cli.boot",
        "booting the vulnerable kernel...".into(),
    );
    let mut kernel = Kernel::boot(&base_tree(), &Options::distro()).map_err(|e| e.to_string())?;
    if apply_opts.smp.cpus > 1 {
        kernel.configure_smp(apply_opts.smp.clone());
    }
    tracer.set_now(kernel.steps);
    if case.exploit.is_some() {
        let worked = run_exploit(&mut kernel, &case) == Some(true);
        tracer.set_now(kernel.steps);
        note(
            tracer,
            "cli.exploit",
            format!(
                "exploit for {id}: {}",
                if worked {
                    "SUCCEEDS (vulnerable)"
                } else {
                    "fails"
                }
            ),
        );
    }
    let opts = CreateOptions {
        accept_data_changes: case.needs_custom_code(),
        ..CreateOptions::default()
    };
    let patch = if case.needs_custom_code() {
        case.full_patch_text()
    } else {
        case.patch_text()
    };
    let (pack, _) = create_update_traced(case.id, &base_tree(), &patch, &opts, tracer)
        .map_err(|e| e.to_string())?;
    // Faults target the hot-update pipeline, so arm them only now —
    // arming before the exploit demonstration would fire them on the
    // exploit module's load instead of the update's.
    if let Some(seed) = fault_seed {
        kernel.faults.reseed(seed);
    }
    for fault in &faults {
        let hit = kernel.arm_fault(*fault)?;
        note(
            tracer,
            "cli.fault_armed",
            match hit {
                Some(addr) => format!("fault armed: {fault} (flipped byte at {addr:#x})"),
                None => format!("fault armed: {fault}"),
            },
        );
    }
    if watched {
        // Lifecycle path: preflight, apply, quarantine under probes,
        // auto-rollback on failure — driven by the UpdateManager.
        let mut probes: Vec<HealthProbe> = probe_specs
            .iter()
            .map(|s| HealthProbe::parse(s))
            .collect::<Result<_, _>>()?;
        if case.exploit.is_some() {
            // The exploit itself doubles as a health probe: a healthy
            // patched kernel must defeat it every round.
            let c = case.clone();
            probes.push(HealthProbe::Custom {
                name: format!("exploit:{id}"),
                check: Box::new(move |k: &mut Kernel| match run_exploit(k, &c) {
                    Some(true) => Err("exploit still succeeds".to_string()),
                    _ => Ok(()),
                }),
            });
        }
        let mut mgr = UpdateManager::with_watch(WatchPolicy {
            rounds: watch_rounds.unwrap_or(3),
            ..WatchPolicy::default()
        });
        let report =
            match mgr.apply_watched(&mut kernel, &pack, &mut probes, &apply_opts, tracer) {
                Ok(r) => r,
                Err(e) => {
                    kernel.faults.disarm();
                    print!("{}", mgr.render_status());
                    return Err(e.to_string());
                }
            };
        kernel.faults.disarm();
        note(
            tracer,
            "cli.applied",
            format!(
                "hot update committed after {} healthy watch round(s): {} function(s) \
                 replaced in {} attempt(s)",
                mgr.watch().rounds,
                pack.replaced_fn_count(),
                report.attempts
            ),
        );
        if do_undo {
            let undo = mgr
                .undo_any(&mut kernel, case.id, &apply_opts, tracer)
                .map_err(|e| e.to_string())?;
            print!("{}", undo.render());
        }
        print!("{}", mgr.render_status());
        note(tracer, "cli.done", "Done!".into());
        return Ok(());
    }
    let mut ks = Ksplice::new();
    let report = ks
        .apply_traced(&mut kernel, &pack, &apply_opts, tracer)
        .map_err(|e| e.to_string())?;
    // Leftover armed counts must not sabotage the re-exploit check.
    kernel.faults.disarm();
    note(
        tracer,
        "cli.applied",
        format!(
            "hot update applied: {} function(s) replaced in {} attempt(s), pause {:?}",
            pack.replaced_fn_count(),
            report.attempts,
            kernel.last_stop_machine.unwrap_or_default()
        ),
    );
    if case.exploit.is_some() {
        let worked = run_exploit(&mut kernel, &case) == Some(true);
        tracer.set_now(kernel.steps);
        note(
            tracer,
            "cli.exploit",
            format!(
                "exploit for {id}: {}",
                if worked {
                    "still succeeds!?"
                } else {
                    "DEFEATED"
                }
            ),
        );
    }
    if do_undo {
        let undo = ks
            .undo_traced(&mut kernel, case.id, &apply_opts, tracer)
            .map_err(|e| e.to_string())?;
        print!("{}", undo.render());
    }
    note(tracer, "cli.done", "Done!".into());
    Ok(())
}

/// `ksplice status`: boots a kernel, hot-applies a stack of updates
/// through the lifecycle manager, optionally reverses one of them (in
/// any order — non-LIFO reversals re-point trampoline chains), and
/// prints the lifecycle table.
fn cmd_status(args: &[String], tracer: &mut Tracer) -> Result<(), String> {
    let apply_opts = retry_policy_arg(args)?;
    let mut ids: Vec<&str> = flag_values(args, "--cve");
    if ids.is_empty() {
        // Three corpus entries patching disjoint units, so they stack
        // and reverse independently.
        ids = vec!["CVE-2006-2451", "CVE-2005-0750", "CVE-2005-4605"];
    }
    let watch_rounds: Option<u32> = flag_value(args, "--watch-rounds")
        .map(|s| s.parse().map_err(|_| "bad --watch-rounds value".to_string()))
        .transpose()?;
    let undo_id = flag_value(args, "--undo");
    let probe_specs = flag_values(args, "--probe");

    let mut kernel = Kernel::boot(&base_tree(), &Options::distro()).map_err(|e| e.to_string())?;
    if apply_opts.smp.cpus > 1 {
        kernel.configure_smp(apply_opts.smp.clone());
    }
    tracer.set_now(kernel.steps);
    let mut mgr = UpdateManager::with_watch(WatchPolicy {
        rounds: watch_rounds.unwrap_or(1),
        ..WatchPolicy::default()
    });
    for id in &ids {
        let case = corpus()
            .into_iter()
            .find(|c| c.id == *id)
            .ok_or_else(|| format!("unknown CVE `{id}` (try `ksplice list`)"))?;
        let opts = CreateOptions {
            accept_data_changes: case.needs_custom_code(),
            ..CreateOptions::default()
        };
        let patch = if case.needs_custom_code() {
            case.full_patch_text()
        } else {
            case.patch_text()
        };
        let (pack, _) = create_update_traced(case.id, &base_tree(), &patch, &opts, tracer)
            .map_err(|e| e.to_string())?;
        let mut probes: Vec<HealthProbe> = probe_specs
            .iter()
            .map(|s| HealthProbe::parse(s))
            .collect::<Result<_, _>>()?;
        if case.exploit.is_some() {
            let c = case.clone();
            probes.push(HealthProbe::Custom {
                name: format!("exploit:{id}"),
                check: Box::new(move |k: &mut Kernel| match run_exploit(k, &c) {
                    Some(true) => Err("exploit still succeeds".to_string()),
                    _ => Ok(()),
                }),
            });
        }
        if let Err(e) = mgr.apply_watched(&mut kernel, &pack, &mut probes, &apply_opts, tracer) {
            print!("{}", mgr.render_status());
            return Err(e.to_string());
        }
    }
    if let Some(id) = undo_id {
        let undo = mgr
            .undo_any(&mut kernel, id, &apply_opts, tracer)
            .map_err(|e| e.to_string())?;
        print!("{}", undo.render());
    }
    print!("{}", mgr.render_status());
    Ok(())
}

fn cmd_eval(args: &[String], tracer: &mut Tracer) -> Result<(), String> {
    let rounds: u64 = flag_value(args, "--stress")
        .map(|s| s.parse().map_err(|_| "bad --stress value".to_string()))
        .transpose()?
        .unwrap_or(8);
    let jobs: usize = flag_value(args, "--jobs")
        .map(|s| s.parse().map_err(|_| "bad --jobs value".to_string()))
        .transpose()?
        .unwrap_or_else(ksplice_eval::default_eval_jobs);
    if jobs == 0 {
        return Err("bad --jobs value".to_string());
    }
    let apply_opts = retry_policy_arg(args)?;
    let report = ksplice_eval::run_full_evaluation_opts(rounds, jobs, &apply_opts, tracer)?;
    tracer.count("eval.cases_run", report.outcomes.len() as u64);
    println!("{}", report.render());
    Ok(())
}

/// `ksplice profile`: PC-sampling profile of an update's hot path —
/// sample the stress workload on the unpatched kernel, apply the CVE's
/// update, sample again, and show which functions migrated into the
/// patch arena. `--flame` writes the post-apply collapsed stacks;
/// `--correlate` additionally measures observed stop_machine abort rates
/// against the profiler's quiescence-risk ranking.
fn cmd_profile(args: &[String], tracer: &mut Tracer) -> Result<(), String> {
    let cve = flag_value(args, "--cve").unwrap_or("CVE-2005-1263");
    let mut cfg = ProfileConfig::default();
    if let Some(s) = flag_value(args, "--interval") {
        cfg.interval = s.parse().map_err(|_| "bad --interval value".to_string())?;
        if cfg.interval == 0 {
            return Err("bad --interval value".to_string());
        }
    }
    if let Some(s) = flag_value(args, "--samples") {
        cfg.max_samples = s.parse().map_err(|_| "bad --samples value".to_string())?;
    }
    if let Some(s) = flag_value(args, "--rounds") {
        cfg.rounds = s.parse().map_err(|_| "bad --rounds value".to_string())?;
    }
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = s.parse().map_err(|_| "bad --seed value".to_string())?;
    }
    let report = run_profile(cve, &cfg, tracer)?;
    if let Some(path) = flag_value(args, "--flame") {
        std::fs::write(path, &report.post.folded).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote {} collapsed stack(s) to {path}",
            report.post.folded.lines().count()
        );
    }
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if args.iter().any(|a| a == "--correlate") {
        let corr = quiescence_correlation(&cfg, 60, 3, tracer)?;
        print!("{}", corr.render());
    }
    Ok(())
}

/// `ksplice fuzz`: a randomized patch campaign against the differential
/// oracle, or (`--replay <dir>`) a deterministic re-run of checked-in
/// regression cases.
fn cmd_fuzz(args: &[String], tracer: &mut Tracer) -> Result<(), String> {
    let mut cfg = ksplice_eval::FuzzConfig::default();
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = s.parse().map_err(|_| "bad --seed value".to_string())?;
    }
    if let Some(s) = flag_value(args, "--mutants") {
        cfg.mutants = s.parse().map_err(|_| "bad --mutants value".to_string())?;
    }
    if let Some(s) = flag_value(args, "--jobs") {
        cfg.jobs = s.parse().map_err(|_| "bad --jobs value".to_string())?;
        if cfg.jobs == 0 {
            return Err("bad --jobs value".to_string());
        }
    }
    if let Some(s) = flag_value(args, "--max-mutations") {
        cfg.max_mutations = s
            .parse()
            .map_err(|_| "bad --max-mutations value".to_string())?;
    }
    if let Some(s) = flag_value(args, "--workload") {
        cfg.workload = ksplice_eval::Workload::parse(s)
            .ok_or("bad --workload: expected syscalls|stress|both")?;
    }
    if let Some(s) = flag_value(args, "--cpus") {
        cfg.cpus = s.parse().map_err(|_| "bad --cpus value".to_string())?;
        if cfg.cpus == 0 {
            return Err("bad --cpus value".to_string());
        }
    }

    if let Some(dir) = flag_value(args, "--replay") {
        let cases = ksplice_eval::load_regression_dir(Path::new(dir))?;
        let cx = ksplice_eval::FuzzContext::new(&cfg)?;
        let mut failed = 0usize;
        for case in &cases {
            // A regression case's expected outcome is usually a kill, so
            // the pipeline's abort events are not worth reporting here.
            match cx.replay(case, &mut Tracer::disabled()) {
                Ok(()) => println!("replay {:<32} ok ({})", case.name, case.expect),
                Err(e) => {
                    failed += 1;
                    println!("replay {:<32} FAILED: {e}", case.name);
                }
            }
        }
        println!("{} case(s), {} failed", cases.len(), failed);
        return if failed == 0 {
            Ok(())
        } else {
            Err(format!("{failed} regression case(s) failed"))
        };
    }

    let report = ksplice_eval::run_campaign(&cfg, tracer)?;
    println!("{}", report.render());
    if let Some(dir) = flag_value(args, "--emit") {
        let dir = Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for case in &report.exemplars {
            let path = dir.join(format!("{}.fuzz", case.name));
            std::fs::write(&path, case.render()).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("emitted {}", path.display());
        }
    }
    if report.clean() {
        Ok(())
    } else {
        Err(format!(
            "{} oracle failure(s), {} panic(s)",
            report.failures.len(),
            report.panics
        ))
    }
}

/// `ksplice rebase`: the drift matrix — port every corpus update onto
/// seeded-drift variants of the base tree and report auto-port success
/// per drift level and mutator class.
fn cmd_rebase(args: &[String], tracer: &mut Tracer) -> Result<(), String> {
    let mut cfg = ksplice_eval::RebaseMatrixConfig::default();
    if let Some(s) = flag_value(args, "--seed") {
        cfg.seed = s.parse().map_err(|_| "bad --seed value".to_string())?;
    }
    if let Some(s) = flag_value(args, "--levels") {
        cfg.levels = s
            .split(',')
            .map(|l| {
                ksplice_lang::DriftLevel::parse(l)
                    .ok_or_else(|| format!("bad --levels entry `{l}` (expected D1..D4)"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if cfg.levels.is_empty() {
            return Err("bad --levels: empty list".to_string());
        }
    }
    if let Some(s) = flag_value(args, "--cves") {
        cfg.cve_limit = s.parse().map_err(|_| "bad --cves value".to_string())?;
    }
    if let Some(s) = flag_value(args, "--jobs") {
        cfg.jobs = s.parse().map_err(|_| "bad --jobs value".to_string())?;
        if cfg.jobs == 0 {
            return Err("bad --jobs value".to_string());
        }
    }
    let matrix = ksplice_eval::run_rebase_matrix(&cfg, tracer)?;
    let text = if args.iter().any(|a| a == "--json") {
        matrix.to_json()
    } else {
        matrix.render()
    };
    if let Some(path) = flag_value(args, "--out") {
        std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
    } else {
        print!("{text}");
    }
    let misports = matrix.misports().len();
    let unclassified = matrix.unclassified().len();
    if misports > 0 || unclassified > 0 {
        return Err(format!(
            "{misports} ground-truth violation(s), {unclassified} unclassified cell(s)"
        ));
    }
    Ok(())
}

/// `ksplice fleet`: a staged, canary-gated rollout across a simulated
/// fleet of heterogeneous kernels over a fault-injectable transport —
/// the Uptrack-style mass-deployment story in one command.
fn cmd_fleet(args: &[String], tracer: &mut Tracer) -> Result<(), String> {
    let parse_u32 = |name: &str| -> Result<Option<u32>, String> {
        flag_value(args, name)
            .map(|s| s.parse().map_err(|_| format!("bad {name} value `{s}`")))
            .transpose()
    };
    let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
        flag_value(args, name)
            .map(|s| s.parse().map_err(|_| format!("bad {name} value `{s}`")))
            .transpose()
    };

    let mut cfg = FleetConfig::default();
    if let Some(n) = parse_u32("--nodes")? {
        cfg.nodes = n;
    }
    if let Some(n) = parse_u32("--versions")? {
        cfg.versions = n as usize;
    }
    if let Some(n) = parse_u32("--cpus")? {
        cfg.cpus = n;
    }
    if let Some(n) = parse_u32("--load")? {
        cfg.load_threads = n;
    }
    if let Some(n) = parse_u64("--seed")? {
        cfg.seed = n;
    }
    cfg.resident = args.iter().any(|a| a == "--resident");
    let versions = cfg.versions.clamp(1, VERSION_NAMES.len());

    let mut policy = RolloutPolicy {
        jobs: std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1).max(1))
            .unwrap_or(4),
        ..RolloutPolicy::default()
    };
    if let Some(n) = parse_u32("--canary")? {
        policy.canary = n;
    }
    if let Some(n) = parse_u32("--growth")? {
        policy.growth = n;
    }
    if let Some(n) = parse_u32("--halt-per-mille")? {
        policy.halt_per_mille = n;
    }
    if let Some(n) = parse_u64("--max-ticks")? {
        policy.max_ticks = n;
    }
    if let Some(n) = parse_u32("--jobs")? {
        if n == 0 {
            return Err("bad --jobs value `0`".to_string());
        }
        policy.jobs = n as usize;
    }

    let update = flag_value(args, "--update").unwrap_or("cve-2006-2451");
    let poison: Vec<usize> = flag_values(args, "--poison-version")
        .into_iter()
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&v| v < versions)
                .ok_or_else(|| format!("bad --poison-version `{s}` (fleet has {versions})"))
        })
        .collect::<Result<_, _>>()?;

    let transport_seed = parse_u64("--transport-seed")?.unwrap_or(0xf1ee_cafe);
    let mut transport = match flag_value(args, "--faults") {
        Some(spec) => SimTransport::with_faults(transport_seed, NetFaults::parse(spec)?),
        None => SimTransport::new(transport_seed),
    };
    for spec in flag_values(args, "--partition") {
        transport.add_partition(Partition::parse(spec)?);
    }

    note(
        tracer,
        "cli.fleet_boot",
        format!(
            "building a {}-node fleet across {} base version(s)...",
            cfg.nodes, versions
        ),
    );
    let mut fleet = Fleet::new(cfg)?;
    let packset = build_packset(update, versions, &poison, fleet.context().cache())?;
    note(
        tracer,
        "cli.fleet_rollout",
        format!(
            "rolling out `{update}` in staged waves (canary {}, growth x{})...",
            policy.canary, policy.growth
        ),
    );
    let orch = RolloutOrchestrator::new(policy, packset, &fleet);
    let report = orch.run(&mut fleet, &mut transport, tracer);
    print!("{}", report.render());
    match report.outcome {
        Outcome::Committed => Ok(()),
        Outcome::Contained => Err(format!(
            "rollout halted at wave {} and rolled back ({} node(s) restored)",
            report.halted_wave.unwrap_or(0),
            report.rolled_back
        )),
        Outcome::Exhausted => Err(format!(
            "rollout did not converge within {} tick(s)",
            report.ticks
        )),
    }
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<16} {:>4} {:<12} custom  summary",
        "CVE", "year", "class"
    );
    for c in corpus() {
        println!(
            "{:<16} {:>4} {:<12} {:>6}  {}",
            c.id,
            c.year,
            match c.class {
                ksplice_eval::VulnClass::PrivilegeEscalation => "priv-esc",
                ksplice_eval::VulnClass::InformationDisclosure => "info-leak",
            },
            c.custom
                .as_ref()
                .map(|cc| cc.lines.to_string())
                .unwrap_or_else(|| "-".into()),
            c.summary
        );
    }
    Ok(())
}

/// Summarises a JSONL trace: per-stage event counts, stop_machine
/// attempt history, and any recorded mismatches/aborts. `--spans`
/// renders the causal span tree; `--timeline <file>` exports the trace
/// as Chrome trace JSON (load in Perfetto or `chrome://tracing`; `-`
/// writes to stdout).
fn cmd_report(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("report: missing trace file")?;
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json(line).map_err(|e| format!("{file}:{}: {e}", lineno + 1))?;
        events.push(event);
    }
    if events.is_empty() {
        return Err(format!("{file}: no events"));
    }
    println!(
        "trace: {} event(s), steps {}..{}",
        events.len(),
        events.first().map(|e| e.ts_steps).unwrap_or(0),
        events.last().map(|e| e.ts_steps).unwrap_or(0)
    );
    for stage in Stage::ALL {
        let n = events.iter().filter(|e| e.stage == stage).count();
        if n > 0 {
            println!("  {:<8} {n} event(s)", stage.as_str());
        }
    }
    let attempts: Vec<&Event> = events
        .iter()
        .filter(|e| e.name == "apply.stop_machine" || e.name == "undo.stop_machine")
        .collect();
    if !attempts.is_empty() {
        println!("stop_machine attempts:");
        for e in attempts {
            let ok = e.field("ok").and_then(Value::as_bool).unwrap_or(false);
            let attempt = e.u64_field("attempt").unwrap_or(0);
            if ok {
                println!(
                    "  {} attempt {attempt}: ok (pause {}us)",
                    e.stage,
                    e.u64_field("pause_us").unwrap_or(0)
                );
            } else {
                println!(
                    "  {} attempt {attempt}: busy `{}` (tid {})",
                    e.stage,
                    e.str_field("busy_fn").unwrap_or("?"),
                    e.u64_field("busy_tid").unwrap_or(0)
                );
            }
        }
    }
    if args.iter().any(|a| a == "--spans") {
        let tree = render_span_tree(&events);
        if tree.is_empty() {
            println!("no spans recorded");
        } else {
            println!("spans:");
            print!("{tree}");
        }
    }
    if let Some(path) = flag_value(args, "--timeline") {
        let json = chrome_trace_json(&events);
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote Chrome trace to {path} (load in Perfetto or chrome://tracing)");
        }
    }
    for e in &events {
        if e.name == "runpre.mismatch" {
            println!(
                "run-pre mismatch: unit {} fn {} pre+{:#x}{}",
                e.str_field("unit").unwrap_or("?"),
                e.str_field("function").unwrap_or("?"),
                e.u64_field("pre_offset").unwrap_or(0),
                match (e.u64_field("expected_byte"), e.u64_field("actual_byte")) {
                    (Some(x), Some(a)) => format!(" expected {x:#04x} found {a:#04x}"),
                    _ => String::new(),
                }
            );
        } else if e.severity == Severity::Error {
            println!("error: {}", e.render_human());
        }
    }
    Ok(())
}
