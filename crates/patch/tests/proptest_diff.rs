//! Property tests: generated diffs always apply and reverse cleanly.

// Gated: the proptest dependency only resolves with registry access.
// Re-add `proptest` to [dev-dependencies] and build with
// `--features proptest-tests` to run this suite.
#![cfg(feature = "proptest-tests")]

use ksplice_patch::{make_diff, Patch};
use proptest::prelude::*;

fn arb_file() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{0,12}", 0..40)
}

/// A random edit script applied to a random file.
fn arb_edit() -> impl Strategy<Value = (Vec<String>, Vec<String>)> {
    arb_file().prop_flat_map(|old| {
        let n = old.len();
        proptest::collection::vec(
            (
                0..=n,
                prop_oneof![Just(0u8), Just(1), Just(2)],
                "[a-z]{0,12}",
            ),
            0..8,
        )
        .prop_map(move |ops| {
            let mut new = old.clone();
            for (pos, kind, text) in ops {
                let pos = pos.min(new.len());
                match kind {
                    0 if pos < new.len() => {
                        new.remove(pos);
                    }
                    1 => new.insert(pos, text),
                    _ if pos < new.len() => new[pos] = text,
                    _ => {}
                }
            }
            (old.clone(), new)
        })
    })
}

fn join(lines: &[String]) -> String {
    let mut s = lines.join("\n");
    if !s.is_empty() {
        s.push('\n');
    }
    s
}

proptest! {
    /// `make_diff` output parses, applies to reproduce the new file, and
    /// reverse-applies to reproduce the old file.
    #[test]
    fn diff_apply_reverse_roundtrip((old, new) in arb_edit()) {
        let old_s = join(&old);
        let new_s = join(&new);
        match make_diff("f.kc", &old_s, &new_s) {
            None => prop_assert_eq!(&old_s, &new_s),
            Some(text) => {
                let p = Patch::parse(&text).unwrap();
                prop_assert_eq!(p.apply_to(&old_s, "f.kc").unwrap(), new_s.clone());
                prop_assert_eq!(p.reversed().apply_to(&new_s, "f.kc").unwrap(), old_s);
            }
        }
    }

    /// The changed-line count never exceeds a full rewrite and is nonzero
    /// whenever the contents differ.
    #[test]
    fn changed_line_count_bounds((old, new) in arb_edit()) {
        let old_s = join(&old);
        let new_s = join(&new);
        if let Some(text) = make_diff("f.kc", &old_s, &new_s) {
            let p = Patch::parse(&text).unwrap();
            let n = p.changed_line_count();
            prop_assert!(n >= 1);
            prop_assert!(n <= old.len() + new.len());
        }
    }

    /// The parser survives arbitrary text.
    #[test]
    fn parser_total_on_garbage(text in "\\PC{0,400}") {
        let _ = Patch::parse(&text);
    }
}
