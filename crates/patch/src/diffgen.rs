//! Unified diff *generation*.
//!
//! The evaluation corpus needs real `diff -u`-style patches whose
//! changed-line counts are honest (Figure 3 buckets patches by lines of
//! code). This module computes an LCS-based line diff and renders hunks
//! with standard three-line context.

use std::fmt::Write as _;

/// Number of context lines around each change, as `diff -u` defaults.
const CONTEXT: usize = 3;

/// Produces a unified diff between `old` and `new` for `path`, or `None`
/// when the contents are identical.
pub fn make_diff(path: &str, old: &str, new: &str) -> Option<String> {
    if old == new {
        return None;
    }
    let old_lines: Vec<&str> = old.lines().collect();
    let new_lines: Vec<&str> = new.lines().collect();
    let ops = diff_ops(&old_lines, &new_lines);
    let mut out = String::new();
    let _ = writeln!(out, "--- a/{path}");
    let _ = writeln!(out, "+++ b/{path}");

    // Group ops into hunks separated by > 2*CONTEXT equal lines.
    let mut i = 0usize;
    while i < ops.len() {
        // Skip leading equals.
        while i < ops.len() && matches!(ops[i], Op::Equal(..)) {
            i += 1;
        }
        if i >= ops.len() {
            break;
        }
        // Hunk start: back up CONTEXT lines.
        let hunk_start = i.saturating_sub(CONTEXT);
        // Find hunk end: run forward until 2*CONTEXT consecutive equals
        // (or the end), then trim trailing context to CONTEXT.
        let mut j = i;
        let mut equal_run = 0usize;
        let mut last_change = i;
        while j < ops.len() {
            match ops[j] {
                Op::Equal(..) => equal_run += 1,
                _ => {
                    equal_run = 0;
                    last_change = j;
                }
            }
            if equal_run > 2 * CONTEXT {
                break;
            }
            j += 1;
        }
        let hunk_end = (last_change + 1 + CONTEXT).min(ops.len());

        // Compute line numbers at hunk_start.
        let (mut old_line, mut new_line) = (1usize, 1usize);
        for op in &ops[..hunk_start] {
            match op {
                Op::Equal(..) => {
                    old_line += 1;
                    new_line += 1;
                }
                Op::Remove(..) => old_line += 1,
                Op::Add(..) => new_line += 1,
            }
        }
        let old_count = ops[hunk_start..hunk_end]
            .iter()
            .filter(|o| !matches!(o, Op::Add(..)))
            .count();
        let new_count = ops[hunk_start..hunk_end]
            .iter()
            .filter(|o| !matches!(o, Op::Remove(..)))
            .count();
        let _ = writeln!(
            out,
            "@@ -{},{} +{},{} @@",
            if old_count == 0 {
                old_line - 1
            } else {
                old_line
            },
            old_count,
            if new_count == 0 {
                new_line - 1
            } else {
                new_line
            },
            new_count
        );
        for op in &ops[hunk_start..hunk_end] {
            match op {
                Op::Equal(s) => {
                    let _ = writeln!(out, " {s}");
                }
                Op::Remove(s) => {
                    let _ = writeln!(out, "-{s}");
                }
                Op::Add(s) => {
                    let _ = writeln!(out, "+{s}");
                }
            }
        }
        i = hunk_end;
    }
    Some(out)
}

/// Produces a multi-file unified diff from `(path, old, new)` triples.
pub fn make_multi_diff(files: &[(&str, &str, &str)]) -> Option<String> {
    let mut out = String::new();
    for (path, old, new) in files {
        if let Some(d) = make_diff(path, old, new) {
            out.push_str(&d);
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

#[derive(Debug, Clone)]
enum Op<'a> {
    Equal(&'a str),
    Remove(&'a str),
    Add(&'a str),
}

/// Classic O(n·m) LCS diff — fine at kernel-source-file scale.
fn diff_ops<'a>(old: &[&'a str], new: &[&'a str]) -> Vec<Op<'a>> {
    let (n, m) = (old.len(), new.len());
    // lcs[i][j] = LCS length of old[i..] and new[j..].
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if old[i] == new[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if old[i] == new[j] {
            ops.push(Op::Equal(old[i]));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(Op::Remove(old[i]));
            i += 1;
        } else {
            ops.push(Op::Add(new[j]));
            j += 1;
        }
    }
    ops.extend(old[i..].iter().map(|s| Op::Remove(s)));
    ops.extend(new[j..].iter().map(|s| Op::Add(s)));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Patch;

    #[test]
    fn generated_diff_round_trips() {
        let old = "a\nb\nc\nd\ne\nf\ng\n";
        let new = "a\nb\nC\nd\ne\nf\ng\nh\n";
        let text = make_diff("x.kc", old, new).unwrap();
        let p = Patch::parse(&text).unwrap();
        assert_eq!(p.apply_to(old, "x.kc").unwrap(), new);
        // Reverse applies too.
        assert_eq!(p.reversed().apply_to(new, "x.kc").unwrap(), old);
    }

    #[test]
    fn changed_line_count_is_minimal() {
        let old = "l1\nl2\nl3\nl4\nl5\nl6\nl7\nl8\nl9\n";
        let new = "l1\nl2\nl3\nl4-fixed\nl5\nl6\nl7\nl8\nl9\n";
        let text = make_diff("x.kc", old, new).unwrap();
        let p = Patch::parse(&text).unwrap();
        assert_eq!(p.changed_line_count(), 2); // one remove + one add
    }

    #[test]
    fn identical_files_yield_none() {
        assert!(make_diff("x", "same\n", "same\n").is_none());
    }

    #[test]
    fn distant_changes_make_separate_hunks() {
        let old: String = (0..40).map(|i| format!("line{i}\n")).collect();
        let mut new_lines: Vec<String> = (0..40).map(|i| format!("line{i}")).collect();
        new_lines[2] = "early-change".to_string();
        new_lines[35] = "late-change".to_string();
        let new = new_lines.join("\n") + "\n";
        let text = make_diff("x.kc", &old, &new).unwrap();
        let hunks = text.lines().filter(|l| l.starts_with("@@")).count();
        assert_eq!(hunks, 2, "{text}");
        let p = Patch::parse(&text).unwrap();
        assert_eq!(p.apply_to(&old, "x.kc").unwrap(), new);
    }

    #[test]
    fn multi_file_diff() {
        let text = make_multi_diff(&[
            ("a.kc", "x\n", "y\n"),
            ("b.kc", "same\n", "same\n"),
            ("c.kc", "p\n", "q\n"),
        ])
        .unwrap();
        let p = Patch::parse(&text).unwrap();
        assert_eq!(p.files.len(), 2);
    }

    #[test]
    fn pure_append() {
        let old = "a\nb\n";
        let new = "a\nb\nc\nd\n";
        let text = make_diff("x.kc", old, new).unwrap();
        let p = Patch::parse(&text).unwrap();
        assert_eq!(p.apply_to(old, "x.kc").unwrap(), new);
    }

    #[test]
    fn pure_delete() {
        let old = "a\nb\nc\nd\n";
        let new = "a\nd\n";
        let text = make_diff("x.kc", old, new).unwrap();
        let p = Patch::parse(&text).unwrap();
        assert_eq!(p.apply_to(old, "x.kc").unwrap(), new);
    }

    #[test]
    fn change_at_file_start_and_end() {
        let old = "first\nmid1\nmid2\nlast\n";
        let new = "FIRST\nmid1\nmid2\nLAST\n";
        let text = make_diff("x.kc", old, new).unwrap();
        let p = Patch::parse(&text).unwrap();
        assert_eq!(p.apply_to(old, "x.kc").unwrap(), new);
    }
}
