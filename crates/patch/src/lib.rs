//! Unified diffs: parsing, application, reversal.
//!
//! `ksplice-create` takes "a patch in the standard patch format, the
//! unified diff patch format" (paper §5). This crate is the consumer: a
//! small, careful reimplementation of the parts of `patch(1)` that kernel
//! security patches exercise — multi-file patches, multiple hunks,
//! context matching with positional *fuzz* (searching near the stated
//! line number when the file has drifted), file addition, and reverse
//! application (the engine behind `ksplice-undo`'s source-level
//! bookkeeping and §5.4's previously-patched-source workflow).
//!
//! # Examples
//!
//! ```
//! use ksplice_patch::Patch;
//!
//! let diff = "\
//! --- a/fs/open.kc
//! +++ b/fs/open.kc
//! @@ -1,3 +1,3 @@
//!  int helper() { return 1; }
//! -int vuln() { return secret; }
//! +int vuln() { return 0; }
//!  int other() { return 2; }
//! ";
//! let patch = Patch::parse(diff).unwrap();
//! let old = "int helper() { return 1; }\nint vuln() { return secret; }\nint other() { return 2; }\n";
//! let new = patch.apply_to(old, "fs/open.kc").unwrap();
//! assert!(new.contains("return 0;"));
//! ```

mod diffgen;

pub use diffgen::{make_diff, make_multi_diff};

use std::fmt;

/// One line of a hunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HunkLine {
    /// Present in both versions (leading space).
    Context(String),
    /// Removed by the patch (leading `-`).
    Remove(String),
    /// Added by the patch (leading `+`).
    Add(String),
}

impl HunkLine {
    /// The line text regardless of kind.
    pub fn text(&self) -> &str {
        match self {
            HunkLine::Context(s) | HunkLine::Remove(s) | HunkLine::Add(s) => s,
        }
    }
}

/// One `@@`-delimited hunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hunk {
    /// 1-based start line in the old file (0 for pure additions to empty
    /// files).
    pub old_start: usize,
    pub old_count: usize,
    pub new_start: usize,
    pub new_count: usize,
    pub lines: Vec<HunkLine>,
}

impl Hunk {
    /// The old-side view: context + removed lines, in order.
    fn old_lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().filter_map(|l| match l {
            HunkLine::Context(s) | HunkLine::Remove(s) => Some(s.as_str()),
            HunkLine::Add(_) => None,
        })
    }

    /// The new-side view: context + added lines, in order.
    fn new_lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().filter_map(|l| match l {
            HunkLine::Context(s) | HunkLine::Add(s) => Some(s.as_str()),
            HunkLine::Remove(_) => None,
        })
    }

    /// Swaps adds and removes (for reverse application).
    fn reversed(&self) -> Hunk {
        Hunk {
            old_start: self.new_start,
            old_count: self.new_count,
            new_start: self.old_start,
            new_count: self.old_count,
            lines: self
                .lines
                .iter()
                .map(|l| match l {
                    HunkLine::Context(s) => HunkLine::Context(s.clone()),
                    HunkLine::Remove(s) => HunkLine::Add(s.clone()),
                    HunkLine::Add(s) => HunkLine::Remove(s.clone()),
                })
                .collect(),
        }
    }
}

/// The changes to one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilePatch {
    /// Path with any `a/`/`b/` prefix stripped.
    pub path: String,
    /// True when the old side is `/dev/null` (file creation).
    pub creates: bool,
    /// True when the new side is `/dev/null` (file deletion).
    pub deletes: bool,
    pub hunks: Vec<Hunk>,
}

/// A parsed multi-file unified diff.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Patch {
    pub files: Vec<FilePatch>,
}

/// Errors from parsing a diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A hunk header was malformed.
    BadHunkHeader { line: usize },
    /// A hunk line had no ` `, `+`, or `-` prefix.
    BadHunkLine { line: usize },
    /// A `@@` header appeared before any `---`/`+++` pair.
    HunkOutsideFile { line: usize },
    /// Hunk body shorter than its header promised.
    TruncatedHunk { line: usize },
    /// No file sections at all.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHunkHeader { line } => write!(f, "line {line}: malformed @@ header"),
            ParseError::BadHunkLine { line } => write!(f, "line {line}: bad hunk line prefix"),
            ParseError::HunkOutsideFile { line } => {
                write!(f, "line {line}: hunk before any file header")
            }
            ParseError::TruncatedHunk { line } => write!(f, "line {line}: truncated hunk"),
            ParseError::Empty => write!(f, "patch contains no file changes"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from applying a patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// A hunk's old lines were not found near the stated position.
    HunkMismatch { path: String, hunk: usize },
    /// The patch references a path the caller did not provide.
    MissingFile { path: String },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::HunkMismatch { path, hunk } => {
                write!(f, "{path}: hunk #{} does not match", hunk + 1)
            }
            ApplyError::MissingFile { path } => write!(f, "{path}: file not found"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Maximum distance (in lines) the applier searches around the stated
/// hunk position, mirroring `patch(1)` fuzz behaviour.
const MAX_FUZZ_OFFSET: usize = 64;

fn strip_prefix(path: &str) -> &str {
    path.strip_prefix("a/")
        .or_else(|| path.strip_prefix("b/"))
        .unwrap_or(path)
}

impl Patch {
    /// Parses a unified diff. Git-style `diff --git`/`index` lines and
    /// other noise between file sections are ignored.
    pub fn parse(text: &str) -> Result<Patch, ParseError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut files: Vec<FilePatch> = Vec::new();
        let mut i = 0usize;
        while i < lines.len() {
            let line = lines[i];
            if let Some(old) = line.strip_prefix("--- ") {
                let new = lines
                    .get(i + 1)
                    .and_then(|l| l.strip_prefix("+++ "))
                    .ok_or(ParseError::BadHunkHeader { line: i + 2 })?;
                let old = old.split('\t').next().unwrap_or(old).trim();
                let new = new.split('\t').next().unwrap_or(new).trim();
                let creates = old == "/dev/null";
                let deletes = new == "/dev/null";
                let path = if creates {
                    strip_prefix(new)
                } else {
                    strip_prefix(old)
                };
                files.push(FilePatch {
                    path: path.to_string(),
                    creates,
                    deletes,
                    hunks: Vec::new(),
                });
                i += 2;
                continue;
            }
            if line.starts_with("@@") {
                let file = files
                    .last_mut()
                    .ok_or(ParseError::HunkOutsideFile { line: i + 1 })?;
                let header =
                    parse_hunk_header(line).ok_or(ParseError::BadHunkHeader { line: i + 1 })?;
                let (old_start, old_count, new_start, new_count) = header;
                let mut hunk = Hunk {
                    old_start,
                    old_count,
                    new_start,
                    new_count,
                    lines: Vec::new(),
                };
                i += 1;
                let (mut seen_old, mut seen_new) = (0usize, 0usize);
                while seen_old < old_count || seen_new < new_count {
                    let body = lines.get(i).ok_or(ParseError::TruncatedHunk { line: i })?;
                    if *body == "\\ No newline at end of file" {
                        i += 1;
                        continue;
                    }
                    let (kind, rest) = match body.as_bytes().first() {
                        Some(b' ') => ('c', &body[1..]),
                        Some(b'-') => ('r', &body[1..]),
                        Some(b'+') => ('a', &body[1..]),
                        None => ('c', ""), // empty context line
                        _ => return Err(ParseError::BadHunkLine { line: i + 1 }),
                    };
                    match kind {
                        'c' => {
                            seen_old += 1;
                            seen_new += 1;
                            hunk.lines.push(HunkLine::Context(rest.to_string()));
                        }
                        'r' => {
                            seen_old += 1;
                            hunk.lines.push(HunkLine::Remove(rest.to_string()));
                        }
                        'a' => {
                            seen_new += 1;
                            hunk.lines.push(HunkLine::Add(rest.to_string()));
                        }
                        _ => unreachable!(),
                    }
                    i += 1;
                }
                file.hunks.push(hunk);
                continue;
            }
            i += 1;
        }
        if files.is_empty() {
            return Err(ParseError::Empty);
        }
        Ok(Patch { files })
    }

    /// The paths this patch touches.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.iter().map(|f| f.path.as_str())
    }

    /// Total added plus removed lines — the "lines of code in the patch"
    /// metric of the paper's Figure 3.
    pub fn changed_line_count(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.hunks)
            .flat_map(|h| &h.lines)
            .filter(|l| !matches!(l, HunkLine::Context(_)))
            .count()
    }

    /// The reverse patch (swap adds/removes) — `patch -R`.
    pub fn reversed(&self) -> Patch {
        Patch {
            files: self
                .files
                .iter()
                .map(|f| FilePatch {
                    path: f.path.clone(),
                    creates: f.deletes,
                    deletes: f.creates,
                    hunks: f.hunks.iter().map(Hunk::reversed).collect(),
                })
                .collect(),
        }
    }

    /// Applies the single-file portion of this patch for `path` to
    /// `content`, returning the new content.
    pub fn apply_to(&self, content: &str, path: &str) -> Result<String, ApplyError> {
        let file =
            self.files
                .iter()
                .find(|f| f.path == path)
                .ok_or_else(|| ApplyError::MissingFile {
                    path: path.to_string(),
                })?;
        apply_file(file, content)
    }

    /// Applies the whole patch against a map-like source of file contents,
    /// returning `(path, new_content)` pairs (deleted files map to `None`).
    #[allow(clippy::type_complexity)]
    pub fn apply_all(
        &self,
        read: &dyn Fn(&str) -> Option<String>,
    ) -> Result<Vec<(String, Option<String>)>, ApplyError> {
        let mut out = Vec::new();
        for file in &self.files {
            if file.deletes {
                out.push((file.path.clone(), None));
                continue;
            }
            let old = if file.creates {
                String::new()
            } else {
                read(&file.path).ok_or_else(|| ApplyError::MissingFile {
                    path: file.path.clone(),
                })?
            };
            let new = apply_file(file, &old)?;
            out.push((file.path.clone(), Some(new)));
        }
        Ok(out)
    }
}

fn parse_hunk_header(line: &str) -> Option<(usize, usize, usize, usize)> {
    // "@@ -l,c +l,c @@ optional context"
    let inner = line.strip_prefix("@@ ")?;
    let end = inner.find(" @@")?;
    let inner = &inner[..end];
    let (old, new) = inner.split_once(' ')?;
    let old = old.strip_prefix('-')?;
    let new = new.strip_prefix('+')?;
    let parse_range = |s: &str| -> Option<(usize, usize)> {
        match s.split_once(',') {
            Some((l, c)) => Some((l.parse().ok()?, c.parse().ok()?)),
            None => Some((s.parse().ok()?, 1)),
        }
    };
    let (os, oc) = parse_range(old)?;
    let (ns, nc) = parse_range(new)?;
    Some((os, oc, ns, nc))
}

fn apply_file(file: &FilePatch, content: &str) -> Result<String, ApplyError> {
    let mut lines: Vec<String> = content.lines().map(|s| s.to_string()).collect();
    // Apply hunks last-to-first so earlier hunks' line numbers stay valid.
    for (idx, hunk) in file.hunks.iter().enumerate().rev() {
        let old: Vec<&str> = hunk.old_lines().collect();
        let stated = hunk.old_start.saturating_sub(1);
        let at = find_hunk(&lines, &old, stated).ok_or_else(|| ApplyError::HunkMismatch {
            path: file.path.clone(),
            hunk: idx,
        })?;
        let new: Vec<String> = hunk.new_lines().map(|s| s.to_string()).collect();
        lines.splice(at..at + old.len(), new);
    }
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    Ok(out)
}

/// Finds where a hunk's old lines match, searching outward from the
/// stated position up to [`MAX_FUZZ_OFFSET`] lines away.
fn find_hunk(lines: &[String], old: &[&str], stated: usize) -> Option<usize> {
    let matches_at = |at: usize| -> bool {
        at + old.len() <= lines.len() && old.iter().zip(&lines[at..]).all(|(a, b)| *a == b)
    };
    if old.is_empty() {
        // Pure insertion: position is taken on faith (clamped).
        return Some(stated.min(lines.len()));
    }
    for delta in 0..=MAX_FUZZ_OFFSET {
        if stated >= delta && matches_at(stated - delta) {
            return Some(stated - delta);
        }
        if delta > 0 && matches_at(stated + delta) {
            return Some(stated + delta);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = "\
--- a/m.kc
+++ b/m.kc
@@ -1,3 +1,4 @@
 line one
-line two
+line 2
+line 2.5
 line three
";

    #[test]
    fn parse_and_apply() {
        let p = Patch::parse(SIMPLE).unwrap();
        assert_eq!(p.files.len(), 1);
        assert_eq!(p.files[0].path, "m.kc");
        assert_eq!(p.changed_line_count(), 3);
        let out = p
            .apply_to("line one\nline two\nline three\n", "m.kc")
            .unwrap();
        assert_eq!(out, "line one\nline 2\nline 2.5\nline three\n");
    }

    #[test]
    fn roundtrip_reverse() {
        let p = Patch::parse(SIMPLE).unwrap();
        let orig = "line one\nline two\nline three\n";
        let patched = p.apply_to(orig, "m.kc").unwrap();
        let back = p.reversed().apply_to(&patched, "m.kc").unwrap();
        assert_eq!(back, orig);
    }

    #[test]
    fn fuzz_finds_drifted_hunk() {
        let p = Patch::parse(SIMPLE).unwrap();
        // Three extra lines above: the stated position is off by three.
        let drifted = "x\ny\nz\nline one\nline two\nline three\n";
        let out = p.apply_to(drifted, "m.kc").unwrap();
        assert!(out.contains("line 2.5"));
        assert!(out.starts_with("x\ny\nz\n"));
    }

    #[test]
    fn mismatch_reported() {
        let p = Patch::parse(SIMPLE).unwrap();
        let err = p.apply_to("completely\ndifferent\n", "m.kc").unwrap_err();
        assert!(matches!(err, ApplyError::HunkMismatch { .. }));
    }

    #[test]
    fn multi_hunk_and_multi_file() {
        let diff = "\
--- a/a.kc
+++ b/a.kc
@@ -1,2 +1,2 @@
-old a1
+new a1
 keep
@@ -9,2 +9,2 @@
 ctx
-old a10
+new a10
--- a/b.kc
+++ b/b.kc
@@ -1,1 +1,1 @@
-old b
+new b
";
        let p = Patch::parse(diff).unwrap();
        assert_eq!(p.files.len(), 2);
        let a_old = "old a1\nkeep\n3\n4\n5\n6\n7\n8\nctx\nold a10\n";
        let a_new = p.apply_to(a_old, "a.kc").unwrap();
        assert!(a_new.contains("new a1") && a_new.contains("new a10"));
        let b_new = p.apply_to("old b\n", "b.kc").unwrap();
        assert_eq!(b_new, "new b\n");
    }

    #[test]
    fn file_creation_and_deletion() {
        let diff = "\
--- /dev/null
+++ b/new.kc
@@ -0,0 +1,2 @@
+int fresh() { return 1; }
+int more() { return 2; }
--- a/gone.kc
+++ /dev/null
@@ -1,1 +0,0 @@
-int dead() { return 0; }
";
        let p = Patch::parse(diff).unwrap();
        assert!(p.files[0].creates);
        assert!(p.files[1].deletes);
        let results = p
            .apply_all(&|path| {
                (path == "gone.kc").then(|| "int dead() { return 0; }\n".to_string())
            })
            .unwrap();
        assert_eq!(results[0].0, "new.kc");
        assert!(results[0].1.as_ref().unwrap().contains("fresh"));
        assert_eq!(results[1], ("gone.kc".to_string(), None));
    }

    #[test]
    fn git_noise_ignored() {
        let diff = "\
diff --git a/m.kc b/m.kc
index 123..456 100644
--- a/m.kc
+++ b/m.kc
@@ -1,1 +1,1 @@
-x
+y
";
        let p = Patch::parse(diff).unwrap();
        assert_eq!(p.files.len(), 1);
        assert_eq!(p.apply_to("x\n", "m.kc").unwrap(), "y\n");
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Patch::parse("nothing here"), Err(ParseError::Empty));
        assert!(matches!(
            Patch::parse("@@ -1,1 +1,1 @@\n-x\n+y\n"),
            Err(ParseError::HunkOutsideFile { .. })
        ));
        assert!(matches!(
            Patch::parse("--- a/x\n+++ b/x\n@@ bogus @@\n"),
            Err(ParseError::BadHunkHeader { .. })
        ));
        assert!(matches!(
            Patch::parse("--- a/x\n+++ b/x\n@@ -1,2 +1,2 @@\n x\n"),
            Err(ParseError::TruncatedHunk { .. })
        ));
        assert!(matches!(
            Patch::parse("--- a/x\n+++ b/x\n@@ -1,1 +1,1 @@\n*bad\n+y\n"),
            Err(ParseError::BadHunkLine { .. })
        ));
    }

    #[test]
    fn missing_file_error() {
        let p = Patch::parse(SIMPLE).unwrap();
        assert!(matches!(
            p.apply_to("x\n", "other.kc"),
            Err(ApplyError::MissingFile { .. })
        ));
        assert!(matches!(
            p.apply_all(&|_| None),
            Err(ApplyError::MissingFile { .. })
        ));
    }

    #[test]
    fn headers_with_timestamps() {
        let diff = "--- a/m.kc\t2008-01-01 00:00:00\n+++ b/m.kc\t2008-01-02 00:00:00\n@@ -1,1 +1,1 @@\n-x\n+y\n";
        let p = Patch::parse(diff).unwrap();
        assert_eq!(p.files[0].path, "m.kc");
    }
}
