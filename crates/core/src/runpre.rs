//! Run-pre matching (paper §4).
//!
//! Given the *pre* object for an affected optimisation unit, the matcher
//! walks every byte of each pre function against the corresponding bytes
//! of the running kernel, simultaneously:
//!
//! * **verifying safety** — any genuine difference between the run code
//!   and the pre code aborts the update (§4.2/§4.3), catching wrong
//!   source, wrong compiler version, or unexpected modification; and
//! * **resolving symbols** — at each unapplied pre relocation the
//!   already-relocated run bytes give the symbol's address:
//!   `S = val + P_run − A` (Figure 2), which disambiguates names that
//!   appear multiple times in kallsyms (§4.1).
//!
//! The walker understands the architecture exactly as §4.3 prescribes:
//! instruction lengths, canonical no-op sequences (skipped on either
//! side), and PC-relative branches — a pre `rel32` may face a run `rel8`
//! (or vice versa) as long as the *targets correspond*, which is checked
//! through an offset-correspondence map built during the walk.

use std::collections::BTreeMap;
use std::fmt;

use ksplice_asm::{branch_info, decode_len, nop_len_at, REL32_ADDEND};
use ksplice_kernel::Kernel;
use ksplice_object::{reloc::read_field, reloc::recover_symbol_value, Object, Reloc, Section};
use ksplice_trace::{Severity, Stage, Tracer, Value};

/// A matched function: where its run code lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnMatch {
    /// Address of the function's code in the running kernel.
    pub run_addr: u64,
    /// Length of the run code actually walked (may differ from the pre
    /// length when branch forms or alignment no-ops differ).
    pub run_len: u64,
}

/// The result of matching one optimisation unit.
#[derive(Debug, Clone, Default)]
pub struct UnitMatch {
    /// The optimisation unit that was matched.
    pub unit: String,
    /// Function symbol → its run location (trampoline target sites).
    pub fn_addrs: BTreeMap<String, FnMatch>,
    /// Symbol name → value recovered from run relocation fields. Used to
    /// fulfil the primary module's dangling relocations. Deliberately
    /// *separate* from `fn_addrs`: a reference to a previously-patched
    /// function correctly resolves to its original (trampolined) address
    /// even though the match site is the latest replacement code (§5.4).
    pub bindings: BTreeMap<String, u64>,
}

/// Why run-pre matching aborted the update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// No kallsyms candidate for a pre function.
    NoCandidate {
        /// The function with no candidate address.
        function: String,
    },
    /// The pre code did not match the run code at any candidate.
    Mismatch {
        /// Optimisation unit the pre function belongs to.
        unit: String,
        /// The function whose bytes diverged.
        function: String,
        /// Candidate run address that got furthest.
        run_addr: u64,
        /// Offset within the pre section where matching failed.
        pre_offset: u64,
        /// `(expected pre byte, actual run byte)` when the failure was a
        /// plain byte comparison; `None` for structural failures
        /// (undecodable instruction, branch shape, length).
        bytes: Option<(u8, u8)>,
        /// Human-readable failure description.
        reason: String,
    },
    /// More than one candidate matched and nothing disambiguated them.
    Ambiguous {
        /// The ambiguous function.
        function: String,
        /// Every run address that fully matched.
        candidates: Vec<u64>,
    },
    /// Two recovered values for the same symbol disagree.
    InconsistentBinding {
        /// The symbol with conflicting recovered values.
        symbol: String,
        /// First recovered value.
        a: u64,
        /// Conflicting recovered value.
        b: u64,
    },
    /// The pre object is malformed.
    BadPreObject(String),
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::NoCandidate { function } => {
                write!(f, "no run candidate for `{function}`")
            }
            MatchError::Mismatch {
                unit,
                function,
                run_addr,
                pre_offset,
                bytes,
                reason,
            } => {
                write!(
                    f,
                    "run-pre mismatch in `{function}` ({unit}) at pre+{pre_offset:#x} (run {run_addr:#x}): {reason}"
                )?;
                if let Some((expected, actual)) = bytes {
                    write!(f, " [expected {expected:#04x}, found {actual:#04x}]")?;
                }
                Ok(())
            }
            MatchError::Ambiguous {
                function,
                candidates,
            } => write!(
                f,
                "`{function}` matches {} run locations ambiguously",
                candidates.len()
            ),
            MatchError::InconsistentBinding { symbol, a, b } => write!(
                f,
                "symbol `{symbol}` recovered inconsistently: {a:#x} vs {b:#x}"
            ),
            MatchError::BadPreObject(m) => write!(f, "bad pre object: {m}"),
        }
    }
}

impl std::error::Error for MatchError {}

/// Matches every function of a pre unit against the running kernel.
///
/// `overrides` forces candidate run addresses for named functions — the
/// §5.4 mechanism: when re-patching an already-patched kernel, the match
/// site for a previously-replaced function is the latest replacement
/// code, not the (now trampolined) original.
pub fn match_unit(
    kernel: &Kernel,
    pre: &Object,
    overrides: &BTreeMap<String, u64>,
) -> Result<UnitMatch, MatchError> {
    match_unit_traced(kernel, pre, overrides, &mut Tracer::disabled())
}

/// [`match_unit`] with match-progress events on `tracer`.
///
/// Per-candidate walk failures are Debug events (trying several
/// same-named kallsyms candidates is normal, §4.1); only a failure of
/// the whole unit emits an Error event — a clean apply leaks no
/// Warn/Error events. On `runpre.mismatch` the event carries the unit,
/// function, byte offset and (for byte-compare failures) the expected
/// and actual bytes.
pub fn match_unit_traced(
    kernel: &Kernel,
    pre: &Object,
    overrides: &BTreeMap<String, u64>,
    tracer: &mut Tracer,
) -> Result<UnitMatch, MatchError> {
    tracer.set_now(kernel.steps);
    tracer.emit(
        Stage::RunPre,
        Severity::Info,
        "runpre.unit_start",
        vec![
            ("unit", pre.name.as_str().into()),
            ("overrides", overrides.len().into()),
        ],
    );
    let result = match_unit_inner(kernel, pre, overrides, tracer);
    match &result {
        Ok(m) => {
            tracer.emit(
                Stage::RunPre,
                Severity::Info,
                "runpre.unit_matched",
                vec![
                    ("unit", m.unit.as_str().into()),
                    ("functions", m.fn_addrs.len().into()),
                    ("bindings", m.bindings.len().into()),
                ],
            );
            tracer.count("runpre.units_matched", 1);
            tracer.count("runpre.symbols_recovered", m.bindings.len() as u64);
        }
        Err(e) => {
            let mut fields: Vec<(&str, Value)> = vec![
                ("unit", pre.name.as_str().into()),
                ("msg", e.to_string().into()),
            ];
            if let MatchError::Mismatch {
                function,
                run_addr,
                pre_offset,
                bytes,
                ..
            } = e
            {
                fields.push(("function", function.as_str().into()));
                fields.push(("run_addr", (*run_addr).into()));
                fields.push(("pre_offset", (*pre_offset).into()));
                if let Some((expected, actual)) = bytes {
                    fields.push(("expected_byte", (*expected as u64).into()));
                    fields.push(("actual_byte", (*actual as u64).into()));
                }
            }
            tracer.emit(Stage::RunPre, Severity::Error, "runpre.mismatch", fields);
            tracer.count("runpre.units_aborted", 1);
        }
    }
    result
}

fn match_unit_inner(
    kernel: &Kernel,
    pre: &Object,
    overrides: &BTreeMap<String, u64>,
    tracer: &mut Tracer,
) -> Result<UnitMatch, MatchError> {
    // Collect the pre functions: (symbol name, section).
    let mut functions: Vec<(&str, &Section)> = Vec::new();
    for sym in pre.defined_functions() {
        let def = sym.def.expect("defined");
        let sec = pre
            .sections
            .get(def.section)
            .ok_or_else(|| MatchError::BadPreObject(format!("symbol {} section", sym.name)))?;
        if !sec.is_function_text() {
            continue;
        }
        functions.push((sym.name.as_str(), sec));
    }

    // Phase 1: all successful candidate matches per function.
    struct Candidate {
        addr: u64,
        run_len: u64,
        recovered: Vec<(String, u64)>,
    }
    let mut table: Vec<(&str, Vec<Candidate>)> = Vec::new();
    for (name, sec) in &functions {
        let candidates: Vec<u64> = match overrides.get(*name) {
            Some(&addr) => vec![addr],
            None => kernel
                .syms
                .lookup_name(name)
                .into_iter()
                .filter(|s| s.is_func)
                .map(|s| s.addr)
                .collect(),
        };
        if candidates.is_empty() {
            return Err(MatchError::NoCandidate {
                function: name.to_string(),
            });
        }
        let mut ok = Vec::new();
        let mut best_err: Option<MatchError> = None;
        for addr in candidates {
            match match_function_traced(kernel, pre, sec, addr, tracer) {
                Ok((run_len, recovered)) => {
                    tracer.emit(
                        Stage::RunPre,
                        Severity::Debug,
                        "runpre.candidate_matched",
                        vec![
                            ("function", (*name).into()),
                            ("run_addr", addr.into()),
                            ("run_len", run_len.into()),
                            ("recovered", recovered.len().into()),
                        ],
                    );
                    ok.push(Candidate {
                        addr,
                        run_len,
                        recovered,
                    })
                }
                Err(e) => {
                    // Normal when kallsyms has several same-named
                    // candidates: only whole-unit failure is an error.
                    tracer.emit(
                        Stage::RunPre,
                        Severity::Debug,
                        "runpre.candidate_rejected",
                        vec![
                            ("function", (*name).into()),
                            ("run_addr", addr.into()),
                            ("msg", e.to_string().into()),
                        ],
                    );
                    if best_err.is_none() {
                        best_err = Some(e);
                    }
                }
            }
        }
        if ok.is_empty() {
            return Err(best_err.unwrap_or(MatchError::NoCandidate {
                function: name.to_string(),
            }));
        }
        table.push((name, ok));
    }

    // Phase 2: fixpoint — accept unambiguous functions, merge their
    // recovered bindings, and use bindings to prune remaining ambiguity
    // (a duplicate-named static's true address is pinned by references
    // from its neighbours).
    let mut out = UnitMatch {
        unit: pre.name.clone(),
        ..UnitMatch::default()
    };
    let mut accepted = vec![false; table.len()];
    loop {
        let mut progress = false;
        for (i, (name, cands)) in table.iter_mut().enumerate() {
            if accepted[i] {
                continue;
            }
            if cands.len() > 1 {
                // Prune candidates that contradict a recovered binding of
                // this very symbol — but never prune to nothing (in the
                // previously-patched case the binding legitimately points
                // at the trampolined original, §5.4).
                if let Some(&want) = out.bindings.get(*name) {
                    if cands.iter().any(|c| c.addr == want) {
                        cands.retain(|c| c.addr == want);
                    }
                }
            }
            if cands.len() == 1 {
                let c = &cands[0];
                for (sym, val) in &c.recovered {
                    match out.bindings.get(sym) {
                        Some(&prev) if prev != *val => {
                            return Err(MatchError::InconsistentBinding {
                                symbol: sym.clone(),
                                a: prev,
                                b: *val,
                            })
                        }
                        Some(_) => {}
                        None => {
                            out.bindings.insert(sym.clone(), *val);
                        }
                    }
                }
                out.fn_addrs.insert(
                    name.to_string(),
                    FnMatch {
                        run_addr: c.addr,
                        run_len: c.run_len,
                    },
                );
                accepted[i] = true;
                progress = true;
            }
        }
        if accepted.iter().all(|&a| a) {
            break;
        }
        if !progress {
            let (name, cands) = table
                .iter()
                .zip(&accepted)
                .find(|(_, &a)| !a)
                .map(|((n, c), _)| (*n, c))
                .expect("some unaccepted entry exists");
            return Err(MatchError::Ambiguous {
                function: name.to_string(),
                candidates: cands.iter().map(|c| c.addr).collect(),
            });
        }
    }
    Ok(out)
}

/// Walks one pre function against run memory at `run_addr`.
///
/// Returns the run length walked and the `(symbol, value)` pairs
/// recovered from relocation fields.
pub fn match_function(
    kernel: &Kernel,
    pre_obj: &Object,
    pre: &Section,
    run_addr: u64,
) -> Result<(u64, Vec<(String, u64)>), MatchError> {
    match_function_traced(kernel, pre_obj, pre, run_addr, &mut Tracer::disabled())
}

/// [`match_function`] recording walk metrics on `tracer`: bytes walked,
/// alignment no-ops skipped on either side, PC-relative equivalence
/// checks performed, and relocation values recovered.
pub fn match_function_traced(
    kernel: &Kernel,
    pre_obj: &Object,
    pre: &Section,
    run_addr: u64,
    tracer: &mut Tracer,
) -> Result<(u64, Vec<(String, u64)>), MatchError> {
    let fn_name = pre
        .name
        .strip_prefix(".text.")
        .unwrap_or(&pre.name)
        .to_string();
    let mismatch = |pre_off: u64, reason: String| MatchError::Mismatch {
        unit: pre_obj.name.clone(),
        function: fn_name.clone(),
        run_addr,
        pre_offset: pre_off,
        bytes: None,
        reason,
    };
    // Relocations indexed by the offset of their field.
    let reloc_at = |off_range: std::ops::Range<u64>| -> Vec<&Reloc> {
        pre.relocs
            .iter()
            .filter(|r| r.offset >= off_range.start && r.offset < off_range.end)
            .collect()
    };

    // Read a window of run bytes generously sized: branch-form shrinkage
    // can only make run code smaller; nops can make it bigger. 2x + slack.
    let window = (pre.data.len() as u64) * 2 + 64;
    let run_bytes = kernel
        .mem
        .peek(run_addr, window)
        .or_else(|_| kernel.mem.peek(run_addr, pre.data.len() as u64))
        .map_err(|e| mismatch(0, format!("run code unreadable: {e}")))?;

    let mut recovered: Vec<(String, u64)> = Vec::new();
    let mut pre_off = 0usize;
    let mut run_off = 0usize;
    // pre instruction-start offset → run offset.
    let mut offset_map: BTreeMap<u64, u64> = BTreeMap::new();
    // (pre-relative branch target, absolute run target) to verify later.
    let mut pending: Vec<(u64, u64, u64)> = Vec::new(); // (pre_target, run_target, at)
    let pre_len = pre.data.len();

    while pre_off < pre_len {
        // Skip alignment no-ops on both sides independently (§4.3).
        while let Some(n) = nop_len_at(&pre.data, pre_off) {
            pre_off += n;
            tracer.count("runpre.nops_skipped", 1);
            if pre_off >= pre_len {
                break;
            }
        }
        if pre_off >= pre_len {
            break;
        }
        while let Some(n) = nop_len_at(run_bytes, run_off) {
            run_off += n;
            tracer.count("runpre.nops_skipped", 1);
        }
        offset_map.insert(pre_off as u64, run_off as u64);

        let pre_instr_len = decode_len(&pre.data[pre_off..])
            .map_err(|e| mismatch(pre_off as u64, format!("undecodable pre byte: {e}")))?;
        let run_instr_len = decode_len(&run_bytes[run_off..])
            .map_err(|e| mismatch(pre_off as u64, format!("undecodable run byte: {e}")))?;

        let pre_branch = branch_info(&pre.data[pre_off..], pre_off as u64)
            .map_err(|e| mismatch(pre_off as u64, e.to_string()))?;
        let run_branch = branch_info(&run_bytes[run_off..], run_addr + run_off as u64)
            .map_err(|e| mismatch(pre_off as u64, e.to_string()))?;

        match (pre_branch, run_branch) {
            (Some(pb), Some(rb)) => {
                tracer.count("runpre.pcrel_checks", 1);
                if pb.cond != rb.cond || pb.is_call != rb.is_call {
                    return Err(mismatch(
                        pre_off as u64,
                        "branch kind/condition differs".to_string(),
                    ));
                }
                let field = reloc_at(pre_off as u64..(pre_off + pre_instr_len) as u64);
                match field.as_slice() {
                    [] => {
                        // Intra-section branch: targets must correspond.
                        pending.push((pb.target, rb.target, pre_off as u64));
                    }
                    [r] => {
                        // Cross-section branch: the run target *is* the
                        // symbol value, modulo a non-conventional addend:
                        // S = target − (A − REL32_ADDEND).
                        let adjust = (r.addend - REL32_ADDEND) as u64;
                        let value = rb.target.wrapping_sub(adjust);
                        record(pre_obj, r, value, &mut recovered);
                    }
                    _ => {
                        return Err(mismatch(
                            pre_off as u64,
                            "multiple relocations on one branch".to_string(),
                        ))
                    }
                }
            }
            (None, None) => {
                if pre_instr_len != run_instr_len {
                    return Err(mismatch(
                        pre_off as u64,
                        format!("instruction length differs ({pre_instr_len} vs {run_instr_len})"),
                    ));
                }
                // Compare bytes outside relocation fields; recover inside.
                let relocs = reloc_at(pre_off as u64..(pre_off + pre_instr_len) as u64);
                let mut field_mask = vec![false; pre_instr_len];
                for r in &relocs {
                    let start = (r.offset as usize) - pre_off;
                    for b in field_mask.iter_mut().skip(start).take(r.kind.width()) {
                        *b = true;
                    }
                }
                for i in 0..pre_instr_len {
                    if !field_mask[i] && pre.data[pre_off + i] != run_bytes[run_off + i] {
                        return Err(MatchError::Mismatch {
                            unit: pre_obj.name.clone(),
                            function: fn_name.clone(),
                            run_addr,
                            pre_offset: (pre_off + i) as u64,
                            bytes: Some((pre.data[pre_off + i], run_bytes[run_off + i])),
                            reason: format!(
                                "byte {:#04x} differs from run byte {:#04x}",
                                pre.data[pre_off + i],
                                run_bytes[run_off + i]
                            ),
                        });
                    }
                }
                for r in relocs {
                    let field_run_off = run_off as u64 + (r.offset - pre_off as u64);
                    let val = read_field(r.kind, run_bytes, field_run_off)
                        .map_err(|e| mismatch(r.offset, e.to_string()))?;
                    let p_run = run_addr + field_run_off;
                    let value = recover_symbol_value(r.kind, val, p_run, r.addend);
                    record(pre_obj, r, value, &mut recovered);
                }
            }
            _ => {
                return Err(mismatch(
                    pre_off as u64,
                    "branch vs non-branch instruction".to_string(),
                ))
            }
        }
        pre_off += pre_instr_len;
        run_off += run_instr_len;
    }
    // End-of-function marker for branches that target the very end.
    offset_map.insert(pre_off as u64, run_off as u64);

    // Verify intra-section branch correspondence.
    for (pre_target, run_target, at) in pending {
        let Some(&mapped) = offset_map.get(&pre_target) else {
            return Err(mismatch(
                at,
                format!("branch targets pre+{pre_target:#x}, not an instruction boundary"),
            ));
        };
        // The run target may point at alignment nops that precede the
        // mapped instruction; walking run nops forward must land on it.
        let mut t = run_target;
        while t < run_addr + mapped {
            match nop_len_at(run_bytes, (t - run_addr) as usize) {
                Some(n) => t += n as u64,
                None => break,
            }
        }
        if t != run_addr + mapped {
            return Err(mismatch(
                at,
                format!(
                    "branch target mismatch: pre+{pre_target:#x} maps to run {:#x}, run branch goes to {run_target:#x}",
                    run_addr + mapped
                ),
            ));
        }
        tracer.count("runpre.pcrel_checks", 1);
    }
    tracer.count("runpre.bytes_matched", run_off as u64);
    tracer.count("runpre.relocs_recovered", recovered.len() as u64);
    Ok((run_off as u64, recovered))
}

fn record(pre_obj: &Object, r: &Reloc, value: u64, out: &mut Vec<(String, u64)>) {
    if let Some(sym) = pre_obj.symbols.get(r.symbol) {
        // The symbol value includes the defined symbol's offset; a reloc
        // against `sym+off` recovers `S`, which is already the symbol
        // address because the addend carried the offset.
        out.push((sym.name.clone(), value));
    }
}
