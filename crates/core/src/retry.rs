//! The retry schedule for the §5.2 safety-check loop.
//!
//! The paper says only that Ksplice "tries again after a short delay"
//! and, "if multiple such attempts are unsuccessful, abandons the
//! upgrade attempt". This module makes that schedule an explicit,
//! testable policy: how many attempts, how the delay between them grows
//! ([`Backoff`]), optional deterministic jitter so retries do not beat
//! in lockstep with a periodic workload, and a cooldown the abandon
//! path runs after rolling back — giving blocked threads time to drain
//! before the failure is reported.
//!
//! Everything is deterministic: jitter for attempt *n* is a pure
//! function of `(jitter_seed, n)`, so a chaos schedule that abandoned
//! replays byte-for-byte from its seed.

use std::fmt;

/// How the delay between safety-check attempts grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backoff {
    /// The same delay after every failed attempt.
    Fixed,
    /// The delay doubles after each failed attempt, capped at
    /// [`RetryPolicy::max_delay_steps`].
    Exponential,
}

/// The schedule the apply/undo retry loops follow (see the module docs).
///
/// [`RetryPolicy::default`] reproduces the historical behaviour: five
/// attempts, a fixed 2 000-step delay, no jitter, no cooldown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Safety-check attempts before abandoning (paper §5.2: "If multiple
    /// such attempts are unsuccessful, then Ksplice abandons the upgrade
    /// attempt and reports the failure").
    pub max_attempts: u32,
    /// Kernel instructions to run after the first failed attempt.
    pub initial_delay_steps: u64,
    /// How the delay grows on subsequent attempts.
    pub backoff: Backoff,
    /// Upper bound on any single delay (the exponential curve flattens
    /// here; fixed schedules are clamped too).
    pub max_delay_steps: u64,
    /// Jitter amplitude as a percentage of the base delay (0 disables).
    /// Each delay is perturbed by a deterministic offset in
    /// `±jitter_pct%`, never below 1 step.
    pub jitter_pct: u32,
    /// Seed for the deterministic per-attempt jitter.
    pub jitter_seed: u64,
    /// Kernel instructions the abandon path runs *after* rolling back,
    /// before the failure is reported (0 disables).
    pub cooldown_steps: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::fixed(5, 2_000)
    }
}

impl RetryPolicy {
    /// A fixed schedule: `max_attempts` tries, `delay_steps` between each.
    pub fn fixed(max_attempts: u32, delay_steps: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            initial_delay_steps: delay_steps,
            backoff: Backoff::Fixed,
            max_delay_steps: delay_steps,
            jitter_pct: 0,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
            cooldown_steps: 0,
        }
    }

    /// An exponential schedule: delays `initial, 2·initial, 4·initial, …`
    /// capped at `max_delay_steps`.
    pub fn exponential(max_attempts: u32, initial_delay_steps: u64, max_delay_steps: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            initial_delay_steps,
            backoff: Backoff::Exponential,
            max_delay_steps,
            jitter_pct: 0,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
            cooldown_steps: 0,
        }
    }

    /// Adds deterministic `±pct%` jitter derived from `seed`.
    pub fn with_jitter(mut self, pct: u32, seed: u64) -> RetryPolicy {
        self.jitter_pct = pct.min(100);
        self.jitter_seed = seed;
        self
    }

    /// Adds a post-rollback cooldown to the abandon path.
    pub fn with_cooldown(mut self, steps: u64) -> RetryPolicy {
        self.cooldown_steps = steps;
        self
    }

    /// The delay, in kernel steps, to wait after failed attempt
    /// `attempt` (1-based). Pure: the same `(policy, attempt)` always
    /// yields the same delay, jitter included.
    pub fn delay_steps(&self, attempt: u32) -> u64 {
        let base = match self.backoff {
            Backoff::Fixed => self.initial_delay_steps,
            Backoff::Exponential => {
                let shift = attempt.saturating_sub(1).min(63);
                if shift >= 64 - self.initial_delay_steps.leading_zeros() && self.initial_delay_steps != 0 {
                    u64::MAX
                } else {
                    self.initial_delay_steps << shift
                }
            }
        }
        .min(self.max_delay_steps);
        if self.jitter_pct == 0 || base == 0 {
            return base;
        }
        let span = base / 100 * self.jitter_pct as u64
            + base % 100 * self.jitter_pct as u64 / 100;
        if span == 0 {
            return base;
        }
        // xorshift64* of (seed ⊕ attempt·φ) — deterministic per attempt.
        let mut x = (self.jitter_seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)).max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let offset = (r % (2 * span + 1)) as i64 - span as i64;
        (base as i64 + offset).max(1) as u64
    }

    /// Parses the CLI spelling of a policy:
    ///
    /// * `fixed:ATTEMPTS:DELAY`
    /// * `exp:ATTEMPTS:INITIAL:MAX`
    ///
    /// with optional trailing modifiers `:jPCT` (jitter percentage,
    /// default seed) and `:cSTEPS` (cooldown), e.g.
    /// `exp:6:500:16000:j15:c4000`.
    pub fn parse(spec: &str) -> Result<RetryPolicy, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let num = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|_| format!("bad {what} `{s}` in `{spec}`"))
        };
        let mut rest;
        let mut policy = match parts.first() {
            Some(&"fixed") => {
                if parts.len() < 3 {
                    return Err(format!("`{spec}`: expected fixed:ATTEMPTS:DELAY"));
                }
                rest = &parts[3..];
                RetryPolicy::fixed(num(parts[1], "attempts")? as u32, num(parts[2], "delay")?)
            }
            Some(&"exp") => {
                if parts.len() < 4 {
                    return Err(format!("`{spec}`: expected exp:ATTEMPTS:INITIAL:MAX"));
                }
                rest = &parts[4..];
                RetryPolicy::exponential(
                    num(parts[1], "attempts")? as u32,
                    num(parts[2], "initial delay")?,
                    num(parts[3], "max delay")?,
                )
            }
            _ => {
                return Err(format!(
                    "`{spec}`: expected `fixed:...` or `exp:...` (see --help)"
                ))
            }
        };
        while let Some(m) = rest.first() {
            rest = &rest[1..];
            policy = match m.split_at(1) {
                ("j", pct) => {
                    let seed = policy.jitter_seed;
                    policy.with_jitter(num(pct, "jitter pct")? as u32, seed)
                }
                ("c", steps) => policy.with_cooldown(num(steps, "cooldown")?),
                _ => return Err(format!("unknown modifier `{m}` in `{spec}`")),
            };
        }
        Ok(policy)
    }
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.backoff {
            Backoff::Fixed => write!(f, "fixed:{}:{}", self.max_attempts, self.initial_delay_steps)?,
            Backoff::Exponential => write!(
                f,
                "exp:{}:{}:{}",
                self.max_attempts, self.initial_delay_steps, self.max_delay_steps
            )?,
        }
        if self.jitter_pct > 0 {
            write!(f, ":j{}", self.jitter_pct)?;
        }
        if self.cooldown_steps > 0 {
            write!(f, ":c{}", self.cooldown_steps)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_historical_schedule() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 5);
        for attempt in 1..=5 {
            assert_eq!(p.delay_steps(attempt), 2_000);
        }
    }

    #[test]
    fn exponential_doubles_and_caps() {
        let p = RetryPolicy::exponential(8, 500, 3_000);
        let delays: Vec<u64> = (1..=6).map(|a| p.delay_steps(a)).collect();
        assert_eq!(delays, vec![500, 1_000, 2_000, 3_000, 3_000, 3_000]);
        // Huge attempt numbers must not overflow.
        assert_eq!(p.delay_steps(200), 3_000);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::fixed(10, 1_000).with_jitter(10, 42);
        for attempt in 1..=10 {
            let d = p.delay_steps(attempt);
            assert_eq!(d, p.delay_steps(attempt), "same input, same delay");
            assert!((900..=1_100).contains(&d), "attempt {attempt}: {d}");
        }
        // Different seeds yield different schedules.
        let q = RetryPolicy::fixed(10, 1_000).with_jitter(10, 43);
        let ps: Vec<u64> = (1..=10).map(|a| p.delay_steps(a)).collect();
        let qs: Vec<u64> = (1..=10).map(|a| q.delay_steps(a)).collect();
        assert_ne!(ps, qs);
    }

    #[test]
    fn parse_roundtrips_the_display_form() {
        for spec in [
            "fixed:5:2000",
            "exp:6:500:16000",
            "exp:6:500:16000:j15",
            "fixed:3:100:c4000",
            "exp:4:250:8000:j20:c1000",
        ] {
            let p = RetryPolicy::parse(spec).unwrap();
            assert_eq!(p.to_string(), spec);
        }
        assert!(RetryPolicy::parse("linear:3:100").is_err());
        assert!(RetryPolicy::parse("fixed:3").is_err());
        assert!(RetryPolicy::parse("exp:3:100:200:x9").is_err());
    }
}
