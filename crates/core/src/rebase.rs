//! Pack rebase: porting an update built against tree version N onto a
//! base that has drifted to N+k.
//!
//! The paper's headline (56/64 CVEs with no source modification) assumes
//! the patch was written against the *exact* running tree. Real fleets
//! drift — identifiers get renamed, hunk context shifts, functions move
//! between units, inline decisions flip. This module ports an existing
//! update across that gap in three stages:
//!
//! 1. **Reuse gate.** The original pack is applied speculatively to a
//!    kernel booted from the drifted tree. Run-pre matching (§4) is the
//!    arbiter: if every patched unit still matches byte-for-byte under
//!    relocation, the stale pack is *reusable* and no source work is
//!    needed. A clean undo (checksum-verified) completes the proof.
//! 2. **Source-level port.** When run-pre refuses, each hunk of the
//!    original unified diff is re-targeted onto the drifted tree through
//!    an escalation ladder: exact/positional match → identifier-aware
//!    rewrite through a learned rename map → remove-anchored context
//!    refresh → cross-unit relocation when the enclosing function moved.
//!    The rename and move maps are *learned*, not given: every function
//!    the patch touches (or mentions) that no longer exists by name is
//!    fuzzy-matched against every function in the drifted tree by
//!    normalized-AST similarity ([`shape_similarity`]). Low-confidence
//!    and ambiguous matches refuse rather than guess.
//! 3. **Re-resolution and verification.** The ported diff is fed back
//!    through `ksplice-create` against the drifted tree — relocations
//!    and symbol references re-resolve against the *new* layout — and
//!    the resulting pack must apply (run-pre gate again) and undo
//!    byte-identically on a drifted kernel before the rebase may claim
//!    `auto-ported`.
//!
//! Everything is deterministic: same inputs, same [`RebaseReport`].

use std::collections::{BTreeMap, BTreeSet};

use ksplice_kernel::Kernel;
use ksplice_lang::{
    build_tree_image_cached, parse_unit, BuildCache, Function, Options, SourceTree, Unit,
};
use ksplice_patch::{make_multi_diff, Hunk, HunkLine, Patch};
use ksplice_trace::{Severity, Stage, Tracer};

use crate::apply::{ApplyOptions, Ksplice};
use crate::create::{create_update_cached_traced, CreateError, CreateOptions};
use crate::package::UpdatePack;

/// Policy knobs for a rebase.
#[derive(Debug, Clone)]
pub struct RebaseOptions {
    /// Passed through to `ksplice-create` for both the original and the
    /// rebased pack builds.
    pub create: CreateOptions,
    /// Apply options for the reuse gate and the final verification
    /// (retry schedule, SMP topology of the verification kernel).
    pub apply: ApplyOptions,
    /// Minimum normalized-AST similarity (percent) for a fuzzy function
    /// match to be trusted.
    pub similarity_min: u32,
    /// The best candidate must beat the runner-up by at least this many
    /// points, or the match is declared ambiguous and the hunk refuses.
    pub ambiguity_margin: u32,
}

impl Default for RebaseOptions {
    fn default() -> RebaseOptions {
        RebaseOptions {
            create: CreateOptions::default(),
            apply: ApplyOptions::default(),
            similarity_min: 55,
            ambiguity_margin: 8,
        }
    }
}

/// The rebase verdict for one update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebaseStatus {
    /// The update landed on the drifted tree and survived the full
    /// apply + undo verification gate.
    AutoPorted,
    /// The port could not be completed confidently; a human must fix it.
    /// Every contributing reason names the responsible unit.
    ManualFixNeeded,
    /// A rebased pack was produced but the verification gate (run-pre,
    /// apply, or checksum-verified undo) refused it.
    Rejected,
}

impl RebaseStatus {
    /// Stable report string.
    pub fn as_str(self) -> &'static str {
        match self {
            RebaseStatus::AutoPorted => "auto-ported",
            RebaseStatus::ManualFixNeeded => "manual-fix-needed",
            RebaseStatus::Rejected => "rejected",
        }
    }
}

/// How one hunk landed.
#[derive(Debug, Clone)]
pub struct HunkPort {
    /// Drifted-tree file the hunk was applied to.
    pub path: String,
    /// Hunk index within its original file patch.
    pub hunk: usize,
    /// Enclosing drifted function (empty at file scope).
    pub func: String,
    /// Which ladder rung matched: `"exact"`, `"rename"`, `"refresh"`,
    /// or `"move"`.
    pub strategy: &'static str,
}

/// Structured outcome of [`rebase_update`].
#[derive(Debug, Clone)]
pub struct RebaseReport {
    /// Update id.
    pub update: String,
    /// The verdict.
    pub status: RebaseStatus,
    /// True when the *original* pack still run-pre-matched the drifted
    /// kernel and was reused without any source work.
    pub reused_pack: bool,
    /// Per-hunk placement (empty when the pack was reused).
    pub ports: Vec<HunkPort>,
    /// Renames the fuzzy matcher learned, `(old, new)`.
    pub renames: Vec<(String, String)>,
    /// Cross-unit moves the matcher learned, `(func, from, to)`.
    pub moves: Vec<(String, String, String)>,
    /// Why the port refused or was rejected; each entry names the
    /// responsible unit (and function, when attributable).
    pub reasons: Vec<String>,
    /// Drifted-tree functions the ported patch modifies — the evaluator
    /// checks these against the drift generator's ground truth to prove
    /// no silent wrong-function patch slipped through.
    pub ported_fns: Vec<String>,
    /// True when the apply + checksum-verified-undo gate passed.
    pub verified: bool,
    /// The rebased unified diff (None when reused or refused).
    pub patch_text: Option<String>,
}

impl RebaseReport {
    /// Deterministic human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let mut tags: Vec<String> = Vec::new();
        if self.reused_pack {
            tags.push("reused-pack".to_string());
        }
        if self.verified {
            tags.push("verified".to_string());
        }
        let tag = if tags.is_empty() {
            String::new()
        } else {
            format!(" [{}]", tags.join(","))
        };
        let _ = writeln!(s, "rebase {}: {}{}", self.update, self.status.as_str(), tag);
        for p in &self.ports {
            let f = if p.func.is_empty() { "<file scope>" } else { &p.func };
            let _ = writeln!(s, "  hunk {}#{} -> {} via {}", p.path, p.hunk + 1, f, p.strategy);
        }
        for (old, new) in &self.renames {
            let _ = writeln!(s, "  rename {old} -> {new}");
        }
        for (f, from, to) in &self.moves {
            let _ = writeln!(s, "  move {f}: {from} -> {to}");
        }
        for r in &self.reasons {
            let _ = writeln!(s, "  ! {r}");
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Normalized-AST similarity
// ---------------------------------------------------------------------------

/// Emits a function body as a stream of structural tags: statement and
/// expression kinds plus operators, with every identifier and literal
/// value erased. Two versions of the same function that differ only by
/// renames, constant tweaks or formatting produce identical streams.
fn shape_stream(f: &Function) -> Vec<u16> {
    use ksplice_lang::{Expr, ExprKind, Stmt, StmtKind};
    fn expr(e: &Expr, out: &mut Vec<u16>) {
        match &e.kind {
            ExprKind::Num(_) => out.push(1),
            ExprKind::Str(_) => out.push(2),
            ExprKind::Ident(_) => out.push(3),
            ExprKind::Unary(op, x) => {
                out.push(10 + *op as u16);
                expr(x, out);
            }
            ExprKind::Binary(op, l, r) => {
                out.push(30 + *op as u16);
                expr(l, out);
                expr(r, out);
            }
            ExprKind::Call { callee, args } => {
                out.push(4);
                expr(callee, out);
                for a in args {
                    expr(a, out);
                }
            }
            ExprKind::Index(b, i) => {
                out.push(5);
                expr(b, out);
                expr(i, out);
            }
            ExprKind::Field(b, _) => {
                out.push(6);
                expr(b, out);
            }
            ExprKind::PField(b, _) => {
                out.push(7);
                expr(b, out);
            }
            ExprKind::Sizeof(_) => out.push(8),
        }
    }
    fn stmt(s: &Stmt, out: &mut Vec<u16>) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                out.push(60);
                if let Some(e) = init {
                    expr(e, out);
                }
            }
            StmtKind::Expr(e) => {
                out.push(61);
                expr(e, out);
            }
            StmtKind::Assign { target, value } => {
                out.push(62);
                expr(target, out);
                expr(value, out);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                out.push(63);
                expr(cond, out);
                for s in then_body {
                    stmt(s, out);
                }
                out.push(64);
                for s in else_body {
                    stmt(s, out);
                }
            }
            StmtKind::While { cond, body } => {
                out.push(65);
                expr(cond, out);
                for s in body {
                    stmt(s, out);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                out.push(66);
                if let Some(s) = init {
                    stmt(s, out);
                }
                if let Some(e) = cond {
                    expr(e, out);
                }
                if let Some(s) = step {
                    stmt(s, out);
                }
                for s in body {
                    stmt(s, out);
                }
            }
            StmtKind::Return(e) => {
                out.push(67);
                if let Some(e) = e {
                    expr(e, out);
                }
            }
            StmtKind::Break => out.push(68),
            StmtKind::Continue => out.push(69),
            StmtKind::Block(body) => {
                out.push(70);
                for s in body {
                    stmt(s, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    for s in &f.body {
        stmt(s, &mut out);
    }
    out
}

/// Bigram multiset of a shape stream.
fn bigrams(stream: &[u16]) -> BTreeMap<(u16, u16), u32> {
    let mut g = BTreeMap::new();
    for w in stream.windows(2) {
        *g.entry((w[0], w[1])).or_insert(0) += 1;
    }
    if stream.len() == 1 {
        *g.entry((stream[0], 0)).or_insert(0) += 1;
    }
    g
}

/// Dice similarity (percent) of two bigram multisets — the
/// "normalized-AST similarity" of the rebase pipeline's fuzzy matcher.
pub fn shape_similarity(a: &Function, b: &Function) -> u32 {
    let (ga, gb) = (bigrams(&shape_stream(a)), bigrams(&shape_stream(b)));
    let total: u32 = ga.values().sum::<u32>() + gb.values().sum::<u32>();
    if total == 0 {
        return 100;
    }
    let mut inter = 0u32;
    for (k, va) in &ga {
        if let Some(vb) = gb.get(k) {
            inter += (*va).min(*vb);
        }
    }
    (200 * inter) / total
}

// ---------------------------------------------------------------------------
// Drifted-tree function index
// ---------------------------------------------------------------------------

struct IndexedFn {
    unit: String,
    func: Function,
    grams: BTreeMap<(u16, u16), u32>,
    /// Line span [start, end) of the function in its drifted unit.
    start: usize,
    end: usize,
}

/// Parses every `.kc` unit of a tree and indexes its functions with
/// line spans (the span runs to the start of the next item or EOF).
fn index_tree(tree: &SourceTree) -> Result<Vec<IndexedFn>, String> {
    let mut out = Vec::new();
    for (path, src) in tree.iter() {
        if !path.ends_with(".kc") {
            continue;
        }
        let unit = parse_unit(path, src).map_err(|e| format!("rebase parse {path}: {e}"))?;
        let total = src.lines().count();
        out.extend(index_unit(path, &unit, total));
    }
    Ok(out)
}

fn index_unit(path: &str, unit: &Unit, total_lines: usize) -> Vec<IndexedFn> {
    let mut fns: Vec<&Function> = unit.functions().collect();
    fns.sort_by_key(|f| f.line);
    let mut out = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        let end = fns
            .get(i + 1)
            .map(|n| n.line as usize)
            .unwrap_or(total_lines + 1);
        out.push(IndexedFn {
            unit: path.to_string(),
            func: (*f).clone(),
            grams: bigrams(&shape_stream(f)),
            start: f.line as usize,
            end,
        });
    }
    out
}

/// One fuzzy-match candidate.
#[derive(Debug, Clone)]
pub struct FuzzyMatch {
    /// Drifted unit the match lives in.
    pub unit: String,
    /// Matched function name.
    pub name: String,
    /// Similarity score, percent.
    pub score: u32,
}

enum MatchOutcome {
    Matched(FuzzyMatch),
    Ambiguous(FuzzyMatch, FuzzyMatch),
    NotFound { best: u32 },
}

/// Finds the drifted counterpart of `base_fn` (from `base_unit`). Exact
/// same-name same-unit matches win if they clear the similarity bar
/// (the split-wrapper case must *not* win on name alone); otherwise the
/// whole tree is ranked by similarity.
fn find_counterpart(
    base_fn: &Function,
    base_unit: &str,
    index: &[IndexedFn],
    opts: &RebaseOptions,
) -> MatchOutcome {
    let base_grams = bigrams(&shape_stream(base_fn));
    let score_of = |ix: &IndexedFn| -> u32 {
        let total: u32 = base_grams.values().sum::<u32>() + ix.grams.values().sum::<u32>();
        if total == 0 {
            return 100;
        }
        let mut inter = 0u32;
        for (k, va) in &base_grams {
            if let Some(vb) = ix.grams.get(k) {
                inter += (*va).min(*vb);
            }
        }
        (200 * inter) / total
    };
    // Identity fast path.
    if let Some(ix) = index
        .iter()
        .find(|ix| ix.unit == base_unit && ix.func.name == base_fn.name)
    {
        let s = score_of(ix);
        if s >= opts.similarity_min {
            return MatchOutcome::Matched(FuzzyMatch {
                unit: ix.unit.clone(),
                name: ix.func.name.clone(),
                score: s,
            });
        }
    }
    // Global ranking, deterministic tie-break: score desc, same unit
    // first, then name/unit order.
    let mut scored: Vec<(u32, &IndexedFn)> = index
        .iter()
        .filter(|ix| ix.func.params.len() == base_fn.params.len())
        .map(|ix| (score_of(ix), ix))
        .collect();
    scored.sort_by(|(sa, a), (sb, b)| {
        sb.cmp(sa)
            .then_with(|| (b.unit == base_unit).cmp(&(a.unit == base_unit)))
            .then_with(|| a.func.name.cmp(&b.func.name))
            .then_with(|| a.unit.cmp(&b.unit))
    });
    let Some((best_score, best)) = scored.first().map(|(s, ix)| (*s, *ix)) else {
        return MatchOutcome::NotFound { best: 0 };
    };
    if best_score < opts.similarity_min {
        return MatchOutcome::NotFound { best: best_score };
    }
    if let Some((second_score, second)) = scored.get(1).map(|(s, ix)| (*s, *ix)) {
        // A runner-up within the margin makes the match unsafe — unless
        // it is the same function name (statics duplicated across units
        // rank together; the same-unit instance already sorted first).
        if best_score.saturating_sub(second_score) < opts.ambiguity_margin
            && second.func.name != best.func.name
        {
            return MatchOutcome::Ambiguous(
                FuzzyMatch {
                    unit: best.unit.clone(),
                    name: best.func.name.clone(),
                    score: best_score,
                },
                FuzzyMatch {
                    unit: second.unit.clone(),
                    name: second.func.name.clone(),
                    score: second_score,
                },
            );
        }
    }
    MatchOutcome::Matched(FuzzyMatch {
        unit: best.unit.clone(),
        name: best.func.name.clone(),
        score: best_score,
    })
}

// ---------------------------------------------------------------------------
// Hunk rewriting helpers
// ---------------------------------------------------------------------------

/// Rewrites identifiers in a line through the rename map (word-boundary
/// aware; longest names first so prefixes never clobber).
fn rewrite_line(line: &str, renames: &[(String, String)]) -> String {
    let mut out = line.to_string();
    for (old, new) in renames {
        out = replace_word(&out, old, new);
    }
    out
}

fn replace_word(s: &str, old: &str, new: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < s.len() {
        if s[i..].starts_with(old) {
            let before_ok = i == 0 || !is_word_byte(bytes[i - 1]);
            let end = i + old.len();
            let after_ok = end >= s.len() || !is_word_byte(bytes[end]);
            if before_ok && after_ok {
                out.push_str(new);
                i = end;
                continue;
            }
        }
        let ch = s[i..].chars().next().expect("in-bounds char");
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All positions where `needle` (a non-empty line run) occurs in
/// `lines`.
fn find_runs(lines: &[String], needle: &[String]) -> Vec<usize> {
    if needle.is_empty() || needle.len() > lines.len() {
        return Vec::new();
    }
    (0..=lines.len() - needle.len())
        .filter(|&at| needle.iter().zip(&lines[at..]).all(|(a, b)| a == b))
        .collect()
}

/// Picks the occurrence nearest to `near`, deterministically preferring
/// the earlier one on ties.
fn nearest(occurrences: &[usize], near: usize) -> Option<usize> {
    occurrences
        .iter()
        .copied()
        .min_by_key(|&at| (at.abs_diff(near), at))
}

// ---------------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------------

/// What the per-hunk ladder produced.
struct PortedHunk {
    port: HunkPort,
    /// The function (by drifted name) the hunk landed in, for the
    /// ported-function ledger ("" at file scope).
    func: String,
}

/// Ports `patch_text` (written against `base`) onto `drifted`.
///
/// Both trees should be canonical (see
/// [`ksplice_lang::canonicalize_tree`]) so formatting noise never reads
/// as drift. Returns the structured report plus the pack to ship when
/// the port verified: the original pack when it was reusable, the
/// rebased pack otherwise.
///
/// Errors are reserved for harness problems (the base patch not building
/// against its own tree, the drifted tree not building at all); every
/// porting failure is a classified verdict inside the report instead.
pub fn rebase_update(
    id: &str,
    base: &SourceTree,
    patch_text: &str,
    drifted: &SourceTree,
    opts: &RebaseOptions,
    cache: &BuildCache,
    tracer: &mut Tracer,
) -> Result<(RebaseReport, Option<UpdatePack>), String> {
    tracer.set_now(0);
    tracer.emit(
        Stage::Rebase,
        Severity::Info,
        "rebase.start",
        vec![("id", id.into())],
    );
    let mut report = RebaseReport {
        update: id.to_string(),
        status: RebaseStatus::ManualFixNeeded,
        reused_pack: false,
        ports: Vec::new(),
        renames: Vec::new(),
        moves: Vec::new(),
        reasons: Vec::new(),
        ported_fns: Vec::new(),
        verified: false,
        patch_text: None,
    };

    // The original update must build against its own base — anything
    // else is a harness bug, not a drift outcome.
    let (orig_pack, _) =
        create_update_cached_traced(id, base, patch_text, &opts.create, cache, tracer)
            .map_err(|e| format!("{id}: original update does not build: {e}"))?;
    let (image, _) = build_tree_image_cached(drifted, &Options::distro(), cache)
        .map_err(|e| format!("{id}: drifted tree does not build: {e}"))?;

    // Stage 1: reuse gate — run-pre matching decides whether the stale
    // pack still fits the drifted kernel.
    tracer.count("rebase.reuse_attempts", 1);
    match verify_pack(&image, &orig_pack, id, &opts.apply, tracer) {
        Ok(()) => {
            tracer.count("rebase.packs_reused", 1);
            tracer.count("rebase.auto_ported", 1);
            tracer.emit(
                Stage::Rebase,
                Severity::Info,
                "rebase.reused",
                vec![("id", id.into())],
            );
            report.status = RebaseStatus::AutoPorted;
            report.reused_pack = true;
            report.verified = true;
            report.ported_fns = touched_base_fns(base, patch_text)?;
            return Ok((report, Some(orig_pack)));
        }
        Err(why) => {
            tracer.emit(
                Stage::Rebase,
                Severity::Debug,
                "rebase.reuse_refused",
                vec![("id", id.into()), ("msg", why.into())],
            );
        }
    }

    // Stage 2: source-level port.
    let patch = Patch::parse(patch_text).map_err(|e| format!("{id}: bad patch: {e}"))?;
    let index = index_tree(drifted)?;
    let base_units = parse_patched_base_units(base, &patch)?;

    // Learn the rename/move maps: every function defined in a patched
    // base unit, or mentioned by name anywhere in the patch text, that
    // no longer exists by name in the drifted tree gets fuzzy-matched.
    let drifted_names: BTreeSet<&str> = index.iter().map(|ix| ix.func.name.as_str()).collect();
    let mut renames: Vec<(String, String)> = Vec::new(); // (old, new), unit-agnostic rewrite map
    let mut fn_targets: BTreeMap<String, FuzzyMatch> = BTreeMap::new(); // base fn -> drifted site
    let mut fn_failures: BTreeMap<String, String> = BTreeMap::new(); // base fn -> reason
    let patch_words = identifier_words(patch_text);
    for (unit_path, unit) in &base_units {
        for f in unit.functions() {
            if !patch_words.contains(f.name.as_str()) && !drifted_names.contains(f.name.as_str()) {
                // Renamed away but never mentioned by the patch: no hunk
                // can need it.
                continue;
            }
            match find_counterpart(f, unit_path, &index, opts) {
                MatchOutcome::Matched(m) => {
                    if m.name != f.name {
                        renames.push((f.name.clone(), m.name.clone()));
                        tracer.count("rebase.renames_learned", 1);
                    }
                    if m.unit != *unit_path {
                        tracer.count("rebase.moves_learned", 1);
                        report
                            .moves
                            .push((f.name.clone(), unit_path.clone(), m.unit.clone()));
                    }
                    fn_targets.insert(f.name.clone(), m);
                }
                MatchOutcome::Ambiguous(a, b) => {
                    fn_failures.insert(
                        f.name.clone(),
                        format!(
                            "{unit_path}: {}: ambiguous drift match — {}:{} ({}%) vs {}:{} ({}%)",
                            f.name, a.unit, a.name, a.score, b.unit, b.name, b.score
                        ),
                    );
                }
                MatchOutcome::NotFound { best } => {
                    fn_failures.insert(
                        f.name.clone(),
                        format!(
                            "{unit_path}: {}: deleted or rewritten beyond recognition \
                             (best similarity {best}% < {}%)",
                            f.name, opts.similarity_min
                        ),
                    );
                }
            }
        }
    }
    renames.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.cmp(b)));
    report.renames = {
        let mut r = renames.clone();
        r.sort();
        r
    };

    // Port every hunk. Failures accumulate (one refusal already means
    // manual, but naming every responsible unit beats stopping early).
    let mut ported = drifted.clone();
    let mut ported_hunks: Vec<PortedHunk> = Vec::new();
    for file in &patch.files {
        if file.creates {
            // Brand-new file: port verbatim unless drift already created
            // the path.
            if drifted.get(&file.path).is_some() {
                report
                    .reasons
                    .push(format!("{}: patch creates a file drift already has", file.path));
            } else if let Ok(content) = patch.apply_to("", &file.path) {
                ported.insert(&file.path, &content);
                for (i, _) in file.hunks.iter().enumerate() {
                    ported_hunks.push(PortedHunk {
                        port: HunkPort {
                            path: file.path.clone(),
                            hunk: i,
                            func: String::new(),
                            strategy: "exact",
                        },
                        func: String::new(),
                    });
                }
            }
            continue;
        }
        if file.deletes {
            if ported.remove(&file.path).is_none() {
                report
                    .reasons
                    .push(format!("{}: patch deletes a file drift already removed", file.path));
            }
            continue;
        }
        let Some(base_src) = base.get(&file.path) else {
            report
                .reasons
                .push(format!("{}: patch targets a file the base tree lacks", file.path));
            continue;
        };
        let base_unit = base_units.get(&file.path);
        // Reverse order so earlier hunks' positions stay meaningful in
        // the base file; resolution is content-based anyway.
        for (hi, hunk) in file.hunks.iter().enumerate().rev() {
            let enclosing = base_unit
                .and_then(|u| enclosing_function(u, base_src, hunk))
                .cloned();
            let outcome = port_hunk(
                hunk,
                hi,
                &file.path,
                enclosing.as_ref(),
                &renames,
                &fn_targets,
                &fn_failures,
                &index,
                &mut ported,
            );
            match outcome {
                Ok(ph) => {
                    tracer.count("rebase.hunks_ported", 1);
                    ported_hunks.push(ph);
                }
                Err(reason) => {
                    tracer.count("rebase.hunks_failed", 1);
                    tracer.emit(
                        Stage::Rebase,
                        Severity::Warn,
                        "rebase.hunk_refused",
                        vec![
                            ("id", id.into()),
                            ("path", file.path.as_str().into()),
                            ("hunk", (hi as u64).into()),
                            ("msg", reason.as_str().into()),
                        ],
                    );
                    report.reasons.push(reason);
                }
            }
        }
    }
    ported_hunks.sort_by(|a, b| (&a.port.path, a.port.hunk).cmp(&(&b.port.path, b.port.hunk)));
    report.ports = ported_hunks.iter().map(|p| p.port.clone()).collect();
    report.ported_fns = {
        let mut fns: Vec<String> = ported_hunks
            .iter()
            .map(|p| p.func.clone())
            .filter(|f| !f.is_empty())
            .collect();
        fns.sort();
        fns.dedup();
        fns
    };

    if !report.reasons.is_empty() {
        tracer.count("rebase.manual_needed", 1);
        finish(tracer, id, &mut report, RebaseStatus::ManualFixNeeded);
        return Ok((report, None));
    }

    // Stage 3: rebuild against the drifted layout and verify.
    let rebased_text = diff_trees_text(drifted, &ported);
    if rebased_text.is_empty() {
        report
            .reasons
            .push("port produced no textual change against the drifted tree".to_string());
        tracer.count("rebase.manual_needed", 1);
        finish(tracer, id, &mut report, RebaseStatus::ManualFixNeeded);
        return Ok((report, None));
    }
    report.patch_text = Some(rebased_text.clone());
    let rebased_pack =
        match create_update_cached_traced(id, drifted, &rebased_text, &opts.create, cache, tracer) {
            Ok((pack, _)) => pack,
            Err(e) => {
                let (status, reason) = match &e {
                    CreateError::Compile { phase, error } => (
                        RebaseStatus::ManualFixNeeded,
                        format!("{}: ported patch fails the {phase} build: {error}", error.unit),
                    ),
                    CreateError::DataSemantics { changes } => (
                        RebaseStatus::ManualFixNeeded,
                        format!(
                            "ported patch changes persistent data in {}",
                            changes
                                .iter()
                                .map(|(u, _)| u.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    ),
                    CreateError::NoEffect => (
                        RebaseStatus::ManualFixNeeded,
                        "ported patch has no object-code effect on the drifted tree".to_string(),
                    ),
                    other => (
                        RebaseStatus::Rejected,
                        format!("rebased patch failed to package: {other}"),
                    ),
                };
                report.reasons.push(reason);
                tracer.count(
                    match status {
                        RebaseStatus::ManualFixNeeded => "rebase.manual_needed",
                        _ => "rebase.updates_rejected",
                    },
                    1,
                );
                finish(tracer, id, &mut report, status);
                return Ok((report, None));
            }
        };

    match verify_pack(&image, &rebased_pack, id, &opts.apply, tracer) {
        Ok(()) => {
            report.verified = true;
            tracer.count("rebase.auto_ported", 1);
            finish(tracer, id, &mut report, RebaseStatus::AutoPorted);
            Ok((report, Some(rebased_pack)))
        }
        Err(why) => {
            report
                .reasons
                .push(format!("verification gate refused the rebased pack: {why}"));
            tracer.count("rebase.updates_rejected", 1);
            finish(tracer, id, &mut report, RebaseStatus::Rejected);
            Ok((report, None))
        }
    }
}

fn finish(tracer: &mut Tracer, id: &str, report: &mut RebaseReport, status: RebaseStatus) {
    report.status = status;
    tracer.emit(
        Stage::Rebase,
        Severity::Info,
        "rebase.done",
        vec![
            ("id", id.into()),
            ("status", status.as_str().into()),
            ("hunks", (report.ports.len() as u64).into()),
            ("reasons", (report.reasons.len() as u64).into()),
        ],
    );
}

/// Boots a kernel from the drifted image, applies the pack, then undoes
/// it, requiring byte-identical text restoration — run-pre matching and
/// the PR 3 checksum contract as one gate.
fn verify_pack(
    image: &ksplice_object::ObjectSet,
    pack: &UpdatePack,
    id: &str,
    apply_opts: &ApplyOptions,
    tracer: &mut Tracer,
) -> Result<(), String> {
    let mut kernel = Kernel::boot_image(image).map_err(|e| format!("boot: {e}"))?;
    if apply_opts.smp.cpus > 1 {
        kernel.configure_smp(apply_opts.smp.clone());
    }
    let before = kernel.mem.text_checksum();
    let mut ks = Ksplice::new();
    ks.apply_traced(&mut kernel, pack, apply_opts, tracer)
        .map_err(|e| format!("apply: {e}"))?;
    ks.undo_traced(&mut kernel, id, apply_opts, tracer)
        .map_err(|e| format!("undo: {e}"))?;
    if kernel.mem.text_checksum() != before {
        return Err("undo left the text image altered".to_string());
    }
    Ok(())
}

/// Parses every base unit the patch touches.
fn parse_patched_base_units(
    base: &SourceTree,
    patch: &Patch,
) -> Result<BTreeMap<String, Unit>, String> {
    let mut out = BTreeMap::new();
    for file in &patch.files {
        if !file.path.ends_with(".kc") {
            continue;
        }
        if let Some(src) = base.get(&file.path) {
            let unit =
                parse_unit(&file.path, src).map_err(|e| format!("rebase parse {}: {e}", file.path))?;
            out.insert(file.path.clone(), unit);
        }
    }
    Ok(out)
}

/// The functions the original patch textually modifies, by scanning
/// each hunk's enclosing function in the base tree.
fn touched_base_fns(base: &SourceTree, patch_text: &str) -> Result<Vec<String>, String> {
    let patch = Patch::parse(patch_text).map_err(|e| format!("bad patch: {e}"))?;
    let units = parse_patched_base_units(base, &patch)?;
    let mut fns = Vec::new();
    for file in &patch.files {
        let (Some(unit), Some(src)) = (units.get(&file.path), base.get(&file.path)) else {
            continue;
        };
        for hunk in &file.hunks {
            if let Some(f) = enclosing_function(unit, src, hunk) {
                fns.push(f.name.clone());
            }
        }
    }
    fns.sort();
    fns.dedup();
    Ok(fns)
}

/// The base function enclosing a hunk's first changed line.
fn enclosing_function<'u>(unit: &'u Unit, src: &str, hunk: &Hunk) -> Option<&'u Function> {
    // Line (1-based, old side) of the first Remove; pure additions
    // anchor on the context line before the first Add.
    let mut old_line = hunk.old_start;
    let mut change_line = None;
    for l in &hunk.lines {
        match l {
            HunkLine::Remove(_) => {
                change_line = Some(old_line);
                break;
            }
            HunkLine::Add(_) => {
                change_line = Some(old_line.saturating_sub(1).max(hunk.old_start));
                break;
            }
            HunkLine::Context(_) => old_line += 1,
        }
    }
    let target = change_line?;
    let total = src.lines().count();
    index_unit(&unit.name, unit, total)
        .into_iter()
        .find(|ix| ix.start <= target && target < ix.end)
        .and_then(|ix| unit.functions().find(|f| f.name == ix.func.name))
}

/// Identifier-shaped words in a text blob.
fn identifier_words(text: &str) -> BTreeSet<String> {
    let mut words = BTreeSet::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            cur.push(ch);
        } else if !cur.is_empty() {
            if !cur.as_bytes()[0].is_ascii_digit() {
                words.insert(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !cur.is_empty() && !cur.as_bytes()[0].is_ascii_digit() {
        words.insert(cur);
    }
    words
}

/// Ports one hunk onto the drifted tree through the escalation ladder.
#[allow(clippy::too_many_arguments)]
fn port_hunk(
    hunk: &Hunk,
    hunk_idx: usize,
    base_path: &str,
    enclosing: Option<&Function>,
    renames: &[(String, String)],
    fn_targets: &BTreeMap<String, FuzzyMatch>,
    fn_failures: &BTreeMap<String, String>,
    index: &[IndexedFn],
    ported: &mut SourceTree,
) -> Result<PortedHunk, String> {
    // Resolve the target file and the drifted function (when any).
    let (target_path, target_fn, moved) = match enclosing {
        Some(f) => {
            if let Some(reason) = fn_failures.get(&f.name) {
                return Err(reason.clone());
            }
            match fn_targets.get(&f.name) {
                Some(m) => (m.unit.clone(), Some(m.clone()), m.unit != base_path),
                // Same-name function still present; targets map only
                // holds entries for names the patch mentions.
                None => (base_path.to_string(), None, false),
            }
        }
        None => (base_path.to_string(), None, false),
    };
    let fn_label = enclosing.map(|f| f.name.as_str()).unwrap_or("<file scope>");
    let Some(content) = ported.get(&target_path) else {
        return Err(format!("{target_path}: {fn_label}: drifted tree lacks the target file"));
    };
    let mut lines: Vec<String> = content.lines().map(|s| s.to_string()).collect();

    // The drifted function's line span, for disambiguation and stated
    // position. Recompute from the *current* ported content lazily —
    // spans from the index are close enough for proximity ranking.
    let fn_span = target_fn
        .as_ref()
        .and_then(|m| {
            index
                .iter()
                .find(|ix| ix.unit == m.unit && ix.func.name == m.name)
                .map(|ix| (ix.start, ix.end))
        })
        .or_else(|| {
            enclosing.and_then(|f| {
                index
                    .iter()
                    .find(|ix| ix.unit == target_path && ix.func.name == f.name)
                    .map(|ix| (ix.start, ix.end))
            })
        });
    let near = fn_span
        .map(|(s, _)| s.saturating_sub(1))
        .unwrap_or(hunk.old_start.saturating_sub(1));

    let rewritten_old: Vec<String> = hunk
        .lines
        .iter()
        .filter_map(|l| match l {
            HunkLine::Context(s) | HunkLine::Remove(s) => Some(rewrite_line(s, renames)),
            HunkLine::Add(_) => None,
        })
        .collect();
    let rewritten_new: Vec<String> = hunk
        .lines
        .iter()
        .filter_map(|l| match l {
            HunkLine::Context(s) | HunkLine::Add(s) => Some(rewrite_line(s, renames)),
            HunkLine::Remove(_) => None,
        })
        .collect();
    let any_renamed = hunk
        .lines
        .iter()
        .any(|l| rewrite_line(l.text(), renames) != l.text());

    let resolved_fn = |lines: &[String], at: usize| -> String {
        // Attribute the landing site to a drifted function by scanning
        // the indexed spans of the target unit.
        index
            .iter()
            .filter(|ix| ix.unit == target_path)
            .find(|ix| ix.start <= at + 1 && at + 1 < ix.end)
            .map(|ix| ix.func.name.clone())
            .unwrap_or_else(|| {
                let _ = lines;
                String::new()
            })
    };

    // Rung 1/2: whole old-side match (exact, then rename-rewritten).
    let occurrences = find_runs(&lines, &rewritten_old);
    if !rewritten_old.is_empty() {
        if let Some(at) = nearest(&occurrences, near) {
            let func = resolved_fn(&lines, at);
            lines.splice(at..at + rewritten_old.len(), rewritten_new.iter().cloned());
            write_back(ported, &target_path, &lines);
            let strategy = if moved {
                "move"
            } else if any_renamed {
                "rename"
            } else {
                "exact"
            };
            return Ok(PortedHunk {
                port: HunkPort {
                    path: target_path,
                    hunk: hunk_idx,
                    func: func.clone(),
                    strategy,
                },
                func,
            });
        }
    }

    // Rung 3: remove-anchored context refresh. Only a single contiguous
    // remove-run can be re-anchored unambiguously.
    let removes: Vec<String> = hunk
        .lines
        .iter()
        .filter_map(|l| match l {
            HunkLine::Remove(s) => Some(rewrite_line(s, renames)),
            _ => None,
        })
        .collect();
    let adds: Vec<String> = hunk
        .lines
        .iter()
        .filter_map(|l| match l {
            HunkLine::Add(s) => Some(rewrite_line(s, renames)),
            _ => None,
        })
        .collect();
    if !removes.is_empty() && remove_run_is_contiguous(hunk) {
        let occ = find_runs(&lines, &removes);
        let chosen = match occ.len() {
            0 => None,
            1 => Some(occ[0]),
            _ => {
                // Several candidates: only trust one inside the matched
                // function's span.
                let in_span: Vec<usize> = match fn_span {
                    Some((s, e)) => occ
                        .iter()
                        .copied()
                        .filter(|&at| at + 1 >= s && at + 1 < e)
                        .collect(),
                    None => Vec::new(),
                };
                if in_span.len() == 1 {
                    Some(in_span[0])
                } else {
                    None
                }
            }
        };
        if let Some(at) = chosen {
            let func = resolved_fn(&lines, at);
            lines.splice(at..at + removes.len(), adds.iter().cloned());
            write_back(ported, &target_path, &lines);
            return Ok(PortedHunk {
                port: HunkPort {
                    path: target_path,
                    hunk: hunk_idx,
                    func: func.clone(),
                    strategy: "refresh",
                },
                func,
            });
        }
    }
    if removes.is_empty() && !adds.is_empty() {
        // Pure addition: anchor after the last leading-context line that
        // still occurs uniquely in the drifted file.
        let prefix: Vec<String> = hunk
            .lines
            .iter()
            .take_while(|l| matches!(l, HunkLine::Context(_)))
            .map(|l| rewrite_line(l.text(), renames))
            .collect();
        for take in (1..=prefix.len()).rev() {
            let anchor = &prefix[prefix.len() - take..];
            let occ = find_runs(&lines, anchor);
            if occ.len() == 1 {
                let at = occ[0] + take;
                let func = resolved_fn(&lines, occ[0]);
                lines.splice(at..at, adds.iter().cloned());
                write_back(ported, &target_path, &lines);
                return Ok(PortedHunk {
                    port: HunkPort {
                        path: target_path,
                        hunk: hunk_idx,
                        func: func.clone(),
                        strategy: "refresh",
                    },
                    func,
                });
            }
        }
        // Appending at end-of-file (custom-code blocks) keeps working
        // even when the trailing context drifted.
        if hunk.old_start >= lines.len().saturating_sub(hunk.old_count) {
            let at = lines.len();
            lines.splice(at..at, adds.iter().cloned());
            write_back(ported, &target_path, &lines);
            return Ok(PortedHunk {
                port: HunkPort {
                    path: target_path,
                    hunk: hunk_idx,
                    func: String::new(),
                    strategy: "refresh",
                },
                func: String::new(),
            });
        }
    }

    Err(format!(
        "{target_path}: {fn_label}: hunk #{} has no unique anchor in the drifted unit",
        hunk_idx + 1
    ))
}

/// True when the hunk's Remove lines form one contiguous block (no
/// interleaved context).
fn remove_run_is_contiguous(hunk: &Hunk) -> bool {
    let mut seen_run = false;
    let mut in_run = false;
    for l in &hunk.lines {
        match l {
            HunkLine::Remove(_) => {
                if seen_run && !in_run {
                    return false;
                }
                seen_run = true;
                in_run = true;
            }
            HunkLine::Context(_) => in_run = false,
            HunkLine::Add(_) => {}
        }
    }
    seen_run
}

fn write_back(tree: &mut SourceTree, path: &str, lines: &[String]) {
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    tree.insert(path, &out);
}

/// Unified diff of every changed file between two trees (paths present
/// in either side).
fn diff_trees_text(old: &SourceTree, new: &SourceTree) -> String {
    let mut files: Vec<(&str, &str, &str)> = Vec::new();
    for (path, old_c) in old.iter() {
        let new_c = new.get(path).unwrap_or("");
        if old_c != new_c {
            files.push((path, old_c, new_c));
        }
    }
    for (path, new_c) in new.iter() {
        if old.get(path).is_none() {
            files.push((path, "", new_c));
        }
    }
    files.sort();
    make_multi_diff(&files).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksplice_lang::canonicalize_tree;

    fn tree(files: &[(&str, &str)]) -> SourceTree {
        let mut t = SourceTree::new();
        for (p, c) in files {
            t.insert(p, c);
        }
        canonicalize_tree(&t)
    }

    const BASE_A: &str = "int helper(int x) { return x + 1; }\n\
        int entry(int a) {\n  int v;\n  v = helper(a);\n  if (v > 10) {\n    v = v - 10;\n  }\n  return v * 2;\n}\n";

    fn base() -> SourceTree {
        tree(&[("m.kc", BASE_A)])
    }

    fn patch_for(base: &SourceTree, edited: &SourceTree) -> String {
        let files: Vec<(&str, &str, &str)> = base
            .iter()
            .filter_map(|(p, old)| edited.get(p).map(|new| (p, old, new)))
            .collect();
        make_multi_diff(&files).unwrap_or_default()
    }

    #[test]
    fn identical_trees_reuse_the_pack() {
        let b = base();
        let mut edited_raw = SourceTree::new();
        edited_raw.insert(
            "m.kc",
            &b.get("m.kc").unwrap().replace("v - 10", "v - 11"),
        );
        let patch = patch_for(&b, &edited_raw);
        let cache = BuildCache::new();
        let mut tracer = Tracer::disabled();
        let (report, pack) = rebase_update(
            "t1",
            &b,
            &patch,
            &b,
            &RebaseOptions::default(),
            &cache,
            &mut tracer,
        )
        .unwrap();
        assert_eq!(report.status, RebaseStatus::AutoPorted);
        assert!(report.reused_pack && report.verified);
        assert!(pack.is_some());
    }

    #[test]
    fn renamed_function_is_learned_and_ported() {
        let b = base();
        // Patch edits entry's arithmetic.
        let mut edited = SourceTree::new();
        edited.insert(
            "m.kc",
            &b.get("m.kc").unwrap().replace("v - 10", "v - 99"),
        );
        let patch = patch_for(&b, &edited);
        // Drift renames helper -> helper_util everywhere; the hunk's
        // context line `v = helper(a);` no longer matches verbatim, so
        // the port must go through the learned rename map.
        let drifted_raw = b.get("m.kc").unwrap().replace("helper", "helper_util");
        let d = tree(&[("m.kc", &drifted_raw)]);
        let cache = BuildCache::new();
        let mut tracer = Tracer::disabled();
        let (report, pack) = rebase_update(
            "t2",
            &b,
            &patch,
            &d,
            &RebaseOptions::default(),
            &cache,
            &mut tracer,
        )
        .unwrap();
        assert_eq!(report.status, RebaseStatus::AutoPorted, "{}", report.render());
        assert!(!report.reused_pack);
        assert!(report.verified);
        assert!(
            report.renames.iter().any(|(o, n)| o == "helper" && n == "helper_util"),
            "{}",
            report.render()
        );
        assert!(report.ports.iter().any(|p| p.strategy == "rename"));
        assert_eq!(report.ported_fns, vec!["entry".to_string()]);
        assert!(pack.is_some());
    }

    #[test]
    fn deleted_function_refuses_with_unit_named() {
        let b = base();
        let mut edited = SourceTree::new();
        edited.insert(
            "m.kc",
            &b.get("m.kc").unwrap().replace("v - 10", "v - 99"),
        );
        let patch = patch_for(&b, &edited);
        // Drift deletes entry outright.
        let d = tree(&[(
            "m.kc",
            "int helper(int x) { return x + 1; }\nint other(int q) { return q; }\n",
        )]);
        let cache = BuildCache::new();
        let mut tracer = Tracer::disabled();
        let (report, pack) = rebase_update(
            "t3",
            &b,
            &patch,
            &d,
            &RebaseOptions::default(),
            &cache,
            &mut tracer,
        )
        .unwrap();
        assert_eq!(report.status, RebaseStatus::ManualFixNeeded, "{}", report.render());
        assert!(pack.is_none());
        assert!(
            report.reasons.iter().any(|r| r.contains("m.kc") && r.contains("entry")),
            "reasons must name the unit and function: {:?}",
            report.reasons
        );
    }

    #[test]
    fn similarity_is_rename_invariant() {
        let a = parse_unit("x.kc", "int f(int p) { if (p > 2) { return p - 1; } return p; }")
            .unwrap();
        let b = parse_unit("x.kc", "int g(int q) { if (q > 9) { return q - 7; } return q; }")
            .unwrap();
        let fa = a.function("f").unwrap();
        let fb = b.function("g").unwrap();
        assert_eq!(shape_similarity(fa, fb), 100);
    }
}
