//! Update packaging: extracting replacement code into primary modules and
//! bundling pre code into helper modules (paper §3.2, §5.1).
//!
//! For each affected optimisation unit the pack carries:
//!
//! * a **primary** object — the changed functions' *post* sections, any
//!   new data, any read-only data the replacement code references, and
//!   the unit's Ksplice hook sections. Its dangling references (to
//!   unchanged functions, shared mutable data, ambiguous statics) stay
//!   as undefined symbols for run-pre matching to resolve.
//! * a **helper** object — the *entire* pre optimisation unit, code and
//!   metadata, which run-pre matching walks against the running kernel.
//!   "Since the helper module must contain the entire optimization unit
//!   corresponding to each patched function, it can be much larger than
//!   the primary module" (§5.1) — measurable here as `helper_size()` vs
//!   `primary_size()`.

use std::collections::BTreeSet;

use ksplice_object::{Object, ObjectSet, SectionKind, SymKind, Symbol};

use crate::differ::{BuildDiff, UnitDiff};

/// The pack for one affected optimisation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitPack {
    /// Compilation unit path, e.g. `fs/exec.kc`.
    pub unit: String,
    /// The entire pre object (helper module payload).
    pub helper: Object,
    /// The replacement-code object (primary module payload).
    pub primary: Object,
    /// `(section name, function symbol name)` of every function the
    /// update replaces (new functions excluded — nothing to patch over).
    pub replaced_fns: Vec<(String, String)>,
}

/// A complete hot update, the output of `ksplice-create`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePack {
    /// Human-readable update id (e.g. the CVE name).
    pub id: String,
    /// One helper/primary pair per affected optimisation unit.
    pub units: Vec<UnitPack>,
    /// The underlying object diff, kept for reporting.
    pub diff: BuildDiff,
}

impl UpdatePack {
    /// Total serialized size of all helper objects (bytes).
    pub fn helper_size(&self) -> usize {
        self.units.iter().map(|u| u.helper.to_bytes().len()).sum()
    }

    /// Total serialized size of all primary objects (bytes).
    pub fn primary_size(&self) -> usize {
        self.units.iter().map(|u| u.primary.to_bytes().len()).sum()
    }

    /// Total number of functions this update replaces.
    pub fn replaced_fn_count(&self) -> usize {
        self.units.iter().map(|u| u.replaced_fns.len()).sum()
    }
}

/// Serialization: the "update tarball" `ksplice-create` writes and
/// `ksplice-apply` consumes (paper §5's `ksplice-8c4o6u.tar.gz`).
impl UpdatePack {
    const MAGIC: &'static [u8; 4] = b"KUPD";

    /// Serializes the pack to its on-disk representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(Self::MAGIC);
        write_str(&mut out, &self.id);
        out.extend_from_slice(&(self.units.len() as u32).to_le_bytes());
        for u in &self.units {
            write_str(&mut out, &u.unit);
            write_blob(&mut out, &u.helper.to_bytes());
            write_blob(&mut out, &u.primary.to_bytes());
            out.extend_from_slice(&(u.replaced_fns.len() as u32).to_le_bytes());
            for (sec, f) in &u.replaced_fns {
                write_str(&mut out, sec);
                write_str(&mut out, f);
            }
        }
        out
    }

    /// Parses a pack written by [`UpdatePack::to_bytes`].
    pub fn parse(bytes: &[u8]) -> Result<UpdatePack, String> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = bytes
                .get(*at..*at + n)
                .ok_or_else(|| "truncated update pack".to_string())?;
            *at += n;
            Ok(s)
        };
        if take(&mut at, 4)? != Self::MAGIC {
            return Err("not a ksplice update pack".to_string());
        }
        let read_u32 = |at: &mut usize| -> Result<u32, String> {
            Ok(u32::from_le_bytes(take(at, 4)?.try_into().unwrap()))
        };
        let read_str = |at: &mut usize| -> Result<String, String> {
            let n = read_u32(at)? as usize;
            String::from_utf8(take(at, n)?.to_vec()).map_err(|e| e.to_string())
        };
        let read_blob = |at: &mut usize| -> Result<Vec<u8>, String> {
            let n = read_u32(at)? as usize;
            Ok(take(at, n)?.to_vec())
        };
        let id = read_str(&mut at)?;
        let nunits = read_u32(&mut at)?;
        let mut units = Vec::new();
        for _ in 0..nunits {
            let unit = read_str(&mut at)?;
            let helper = Object::parse(&read_blob(&mut at)?).map_err(|e| e.to_string())?;
            let primary = Object::parse(&read_blob(&mut at)?).map_err(|e| e.to_string())?;
            let nfns = read_u32(&mut at)?;
            let mut replaced_fns = Vec::new();
            for _ in 0..nfns {
                let sec = read_str(&mut at)?;
                let f = read_str(&mut at)?;
                replaced_fns.push((sec, f));
            }
            units.push(UnitPack {
                unit,
                helper,
                primary,
                replaced_fns,
            });
        }
        if at != bytes.len() {
            return Err("trailing bytes in update pack".to_string());
        }
        Ok(UpdatePack {
            id,
            units,
            diff: BuildDiff::default(),
        })
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Builds the per-unit packs from a diff plus the two builds.
///
/// `data_changes` in the diff do **not** stop packaging here — policy
/// (abort vs programmer-supplied custom code) is decided by
/// `ksplice-create` (see [`crate::create`]).
pub fn build_packs(id: &str, pre: &ObjectSet, post: &ObjectSet, diff: &BuildDiff) -> UpdatePack {
    let mut units = Vec::new();
    for ud in diff.affected() {
        let post_obj = post.get(&ud.unit).expect("diffed unit exists in post");
        // A unit new in post has no pre counterpart; its helper is empty
        // (there is nothing in the running kernel to match).
        let helper = pre
            .get(&ud.unit)
            .cloned()
            .unwrap_or_else(|| Object::new(&ud.unit));
        let primary = extract_primary(post_obj, ud);
        let replaced_fns = ud
            .changed_fns
            .iter()
            .filter(|s| !ud.new_fns.contains(s))
            .map(|sec| {
                let fn_name = sec.strip_prefix(".text.").unwrap_or(sec).to_string();
                (sec.clone(), fn_name)
            })
            .collect();
        units.push(UnitPack {
            unit: ud.unit.clone(),
            helper,
            primary,
            replaced_fns,
        });
    }
    UpdatePack {
        id: id.to_string(),
        units,
        diff: diff.clone(),
    }
}

/// Extracts the replacement-code object for one unit.
pub fn extract_primary(post: &Object, ud: &UnitDiff) -> Object {
    // Seed: changed function sections, new data sections, hook sections.
    let mut wanted: BTreeSet<String> = ud.changed_fns.iter().cloned().collect();
    wanted.extend(ud.new_data.iter().cloned());
    for sec in &post.sections {
        if sec.kind == SectionKind::Note && sec.name.starts_with(".ksplice.") {
            wanted.insert(sec.name.clone());
        }
    }
    // Transitive closure: pull in *read-only* local data that wanted code
    // references (string literals; duplicating immutable bytes is safe),
    // but never pre-existing mutable data — replacement code must share
    // the running kernel's instances of those.
    loop {
        let mut grew = false;
        for sec in &post.sections {
            if !wanted.contains(&sec.name) {
                continue;
            }
            let referenced: Vec<usize> = sec.relocs.iter().map(|r| r.symbol).collect();
            for idx in referenced {
                let Some(sym) = post.symbols.get(idx) else {
                    continue;
                };
                let Some(def) = sym.def else { continue };
                let Some(target) = post.sections.get(def.section) else {
                    continue;
                };
                let is_rodata = target.is_alloc() && !target.flags.write && !target.flags.exec;
                let is_new_data = ud.new_data.contains(&target.name);
                if (is_rodata || is_new_data) && wanted.insert(target.name.clone()) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    let mut out = Object::new(&post.name);
    // Copy wanted sections in original order, remembering new indices.
    let mut sec_map: Vec<Option<usize>> = vec![None; post.sections.len()];
    for (i, sec) in post.sections.iter().enumerate() {
        if wanted.contains(&sec.name) {
            let mut copy = sec.clone();
            copy.relocs.clear();
            sec_map[i] = Some(out.add_section(copy));
        }
    }
    // Copy symbols: defined-in-copied-section symbols stay defined;
    // anything else a reloc needs becomes undefined.
    let mut sym_map: Vec<Option<usize>> = vec![None; post.symbols.len()];
    for (i, sym) in post.symbols.iter().enumerate() {
        let copied_def = sym
            .def
            .and_then(|d| sec_map.get(d.section).copied().flatten())
            .map(|new_sec| {
                let mut s = sym.clone();
                s.def = Some(ksplice_object::SymbolDef {
                    section: new_sec,
                    ..sym.def.expect("checked above")
                });
                s
            });
        if let Some(s) = copied_def {
            sym_map[i] = Some(out.add_symbol(s));
        }
    }
    // Relocations of copied sections; unknown targets become undefined
    // symbols by name.
    for (i, sec) in post.sections.iter().enumerate() {
        let Some(new_idx) = sec_map[i] else { continue };
        for r in &sec.relocs {
            let new_sym = match sym_map.get(r.symbol).copied().flatten() {
                Some(s) => s,
                None => {
                    let name = post
                        .symbols
                        .get(r.symbol)
                        .map(|s| s.name.clone())
                        .unwrap_or_default();
                    let idx = match out.symbol_by_name(&name) {
                        Some((idx, _)) => idx,
                        None => out.add_symbol(Symbol {
                            name,
                            binding: ksplice_object::Binding::Global,
                            kind: SymKind::NoType,
                            def: None,
                        }),
                    };
                    sym_map[r.symbol] = Some(idx);
                    idx
                }
            };
            out.sections[new_idx].relocs.push(ksplice_object::Reloc {
                symbol: new_sym,
                ..r.clone()
            });
        }
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differ::diff_builds;
    use ksplice_lang::{build_tree, Options, SourceTree};

    fn build(files: &[(&str, &str)]) -> ObjectSet {
        let t: SourceTree = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        build_tree(&t, &Options::pre_post()).unwrap()
    }

    const PRE: &str = "int limit = 10;\
        static int debug;\
        int helper_fn(int x) { int i; int s; s = x; for (i = 0; i < 3; i = i + 1) { s = s + i; } return s; }\
        int check(int x) { debug = debug + 1; if (x > limit) { return 0 - 1; } return helper_fn(x); }";

    const POST: &str = "int limit = 10;\
        static int debug;\
        int helper_fn(int x) { int i; int s; s = x; for (i = 0; i < 3; i = i + 1) { s = s + i; } return s; }\
        int check(int x) { debug = debug + 1; if (x >= limit) { printk(\"clamped\"); return 0 - 1; } return helper_fn(x); }";

    fn pack() -> UpdatePack {
        let pre = build(&[("m.kc", PRE)]);
        let post = build(&[("m.kc", POST)]);
        let diff = diff_builds(&pre, &post);
        build_packs("cve-test", &pre, &post, &diff)
    }

    #[test]
    fn primary_contains_only_changed_function() {
        let p = pack();
        assert_eq!(p.units.len(), 1);
        let primary = &p.units[0].primary;
        assert!(primary.section_by_name(".text.check").is_some());
        assert!(primary.section_by_name(".text.helper_fn").is_none());
        // The new string literal travels with the replacement code.
        assert!(
            primary
                .sections
                .iter()
                .any(|s| s.name.starts_with(".rodata.")),
            "expected the printk string to be extracted"
        );
    }

    #[test]
    fn shared_mutable_data_not_duplicated() {
        let p = pack();
        let primary = &p.units[0].primary;
        // `limit` and `debug` are pre-existing mutable data: replacement
        // code must reference the live instances, not fresh copies.
        assert!(primary.section_by_name(".data.limit").is_none());
        assert!(primary.section_by_name(".bss.debug").is_none());
        // They appear as undefined symbols instead.
        let (_, limit) = primary.symbol_by_name("limit").unwrap();
        assert!(limit.def.is_none());
        let (_, debug) = primary.symbol_by_name("debug").unwrap();
        assert!(debug.def.is_none());
    }

    #[test]
    fn unchanged_callee_is_an_undefined_reference() {
        let p = pack();
        let primary = &p.units[0].primary;
        let (_, helper) = primary.symbol_by_name("helper_fn").unwrap();
        assert!(helper.def.is_none(), "helper_fn must resolve to run code");
    }

    #[test]
    fn helper_is_the_whole_unit_and_larger() {
        let p = pack();
        let helper = &p.units[0].helper;
        assert!(helper.section_by_name(".text.check").is_some());
        assert!(helper.section_by_name(".text.helper_fn").is_some());
        assert!(helper.section_by_name(".data.limit").is_some());
        // §5.1: the helper can be much larger than the primary.
        assert!(p.helper_size() > p.primary_size());
    }

    #[test]
    fn replaced_fn_list_excludes_new_functions() {
        let pre = build(&[(
            "m.kc",
            "int f(int x) { if (x > 1) { return 1; } return 2; }",
        )]);
        let post = build(&[(
            "m.kc",
            "int fresh(int v) { int i; int s; s = v; for (i = 0; i < 9; i = i + 1) { s = s + i * v; } return s; }\
             int f(int x) { if (x > 1) { return fresh(x); } return 2; }",
        )]);
        let diff = diff_builds(&pre, &post);
        let pack = build_packs("t", &pre, &post, &diff);
        let names: Vec<&str> = pack.units[0]
            .replaced_fns
            .iter()
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(names, vec!["f"]);
        // But `fresh` still ships in the primary.
        assert!(pack.units[0]
            .primary
            .section_by_name(".text.fresh")
            .is_some());
    }

    #[test]
    fn pack_serialization_roundtrip() {
        let p = pack();
        let bytes = p.to_bytes();
        let back = UpdatePack::parse(&bytes).unwrap();
        assert_eq!(back.id, p.id);
        assert_eq!(back.units.len(), p.units.len());
        assert_eq!(back.units[0].helper, p.units[0].helper);
        assert_eq!(back.units[0].primary, p.units[0].primary);
        assert_eq!(back.units[0].replaced_fns, p.units[0].replaced_fns);
        assert!(UpdatePack::parse(b"XXXX").is_err());
        assert!(UpdatePack::parse(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn hook_sections_ship_in_primary() {
        let pre = build(&[(
            "m.kc",
            "int f(int x) { if (x > 1) { return 1; } return 2; }",
        )]);
        let post = build(&[(
            "m.kc",
            "int f(int x) { if (x > 1) { return 3; } return 2; }\
             int myupdate() { printk(\"fixup ran\"); return 0; }\
             ksplice_apply(myupdate);",
        )]);
        let diff = diff_builds(&pre, &post);
        let pack = build_packs("t", &pre, &post, &diff);
        let primary = &pack.units[0].primary;
        let (_, hooks) = primary.section_by_name(".ksplice.apply").unwrap();
        assert_eq!(hooks.relocs.len(), 1);
        assert!(primary.section_by_name(".text.myupdate").is_some());
    }
}
