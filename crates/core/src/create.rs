//! `ksplice-create`: from original source + unified diff to an update
//! pack (paper §3, Figure 1, §5).
//!
//! The pipeline: build the original tree (*pre*), apply the patch and
//! build again (*post*) — both with per-item sections — then diff the
//! object code and package the changed functions. A patch that changes a
//! pre-existing datum's initialiser or size is refused unless the caller
//! sets [`CreateOptions::accept_data_changes`], which corresponds to the
//! §2 workflow: a programmer has reviewed the patch's data-structure
//! semantics (and typically added custom hook code to migrate live
//! instances, §5.3).

use ksplice_lang::{build_tree_cached, build_tree_image_cached, BuildCache, Options, SourceTree};
use ksplice_patch::Patch;
use ksplice_trace::{Severity, Stage, Tracer};

use crate::differ::{diff_builds_traced, DataChange};
use crate::package::{build_packs, UpdatePack};

/// Policy knobs for update creation.
#[derive(Debug, Clone, Default)]
pub struct CreateOptions {
    /// Accept patches that change pre-existing data initialisers/sizes.
    /// Off by default: such patches "change the semantics of persistent
    /// data structures" (Table 1) and need programmer attention.
    pub accept_data_changes: bool,
    /// Compiler options for the pre/post builds. `None` uses
    /// [`Options::pre_post`]. ksplice-create should use the same compiler
    /// version as the original kernel build; a mismatch here is *detected later*
    /// by run-pre matching, not at create time (§4.3).
    pub build_options: Option<Options>,
}

/// Errors from `ksplice-create`.
#[derive(Debug)]
pub enum CreateError {
    /// The unified diff did not parse.
    PatchParse(ksplice_patch::ParseError),
    /// The patch did not apply to the given source tree.
    PatchApply(ksplice_patch::ApplyError),
    /// A build failed (pre builds failing means the wrong source was
    /// supplied; post builds failing means a broken patch).
    Compile {
        /// Which build failed: `"pre"` or `"post"`.
        phase: &'static str,
        /// The compiler's error.
        error: ksplice_lang::CompileError,
    },
    /// The patch changes persistent data semantics and
    /// `accept_data_changes` was not set.
    DataSemantics {
        /// `(unit, change)` for every flagged datum.
        changes: Vec<(String, DataChange)>,
    },
    /// The patch produced no object-code change at all.
    NoEffect,
}

impl std::fmt::Display for CreateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CreateError::PatchParse(e) => write!(f, "bad patch: {e}"),
            CreateError::PatchApply(e) => write!(f, "patch does not apply: {e}"),
            CreateError::Compile { phase, error } => write!(f, "{phase} build failed: {error}"),
            CreateError::DataSemantics { changes } => {
                write!(
                    f,
                    "patch changes persistent data (needs custom code): {}",
                    changes
                        .iter()
                        .map(|(u, c)| format!("{u}:{}", c.section))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            CreateError::NoEffect => write!(f, "patch has no object-code effect"),
        }
    }
}

impl std::error::Error for CreateError {}

/// Applies a unified diff to a source tree, returning the patched tree.
pub fn apply_patch_to_tree(tree: &SourceTree, patch: &Patch) -> Result<SourceTree, CreateError> {
    let mut out = tree.clone();
    let results = patch
        .apply_all(&|path| tree.get(path).map(|s| s.to_string()))
        .map_err(CreateError::PatchApply)?;
    for (path, contents) in results {
        match contents {
            Some(c) => out.insert(&path, &c),
            None => {
                out.remove(&path);
            }
        }
    }
    Ok(out)
}

/// `ksplice-create`: builds pre and post and packages the update.
///
/// Returns the pack together with the patched source tree — the caller
/// needs the latter as the "previously-patched source" when stacking a
/// further update later (§5.4).
pub fn create_update(
    id: &str,
    source: &SourceTree,
    patch_text: &str,
    opts: &CreateOptions,
) -> Result<(UpdatePack, SourceTree), CreateError> {
    create_update_traced(id, source, patch_text, opts, &mut Tracer::disabled())
}

/// [`create_update`] with build/diff/package events on `tracer`.
pub fn create_update_traced(
    id: &str,
    source: &SourceTree,
    patch_text: &str,
    opts: &CreateOptions,
    tracer: &mut Tracer,
) -> Result<(UpdatePack, SourceTree), CreateError> {
    create_update_cached_traced(id, source, patch_text, opts, &BuildCache::new(), tracer)
}

/// [`create_update`] through a shared [`BuildCache`]: the pre build of an
/// already-seen tree is served from the cache and the post build
/// recompiles only the units the patch touches. Repeated creates against
/// the same base tree (the evaluation corpus, a fleet of updates) pay for
/// each unit's compile once per process.
pub fn create_update_cached(
    id: &str,
    source: &SourceTree,
    patch_text: &str,
    opts: &CreateOptions,
    cache: &BuildCache,
) -> Result<(UpdatePack, SourceTree), CreateError> {
    create_update_cached_traced(id, source, patch_text, opts, cache, &mut Tracer::disabled())
}

/// [`create_update_cached`] with build/diff/package events on `tracer`,
/// plus `build.cache_hits` / `build.cache_misses` / `build.cache_evictions`
/// / `build.units_compiled` counters covering both builds, all inside a
/// `create` span.
pub fn create_update_cached_traced(
    id: &str,
    source: &SourceTree,
    patch_text: &str,
    opts: &CreateOptions,
    cache: &BuildCache,
    tracer: &mut Tracer,
) -> Result<(UpdatePack, SourceTree), CreateError> {
    let span = tracer.span_start(Stage::Create, "create", vec![("id", id.into())]);
    let result = create_inner(id, source, patch_text, opts, cache, tracer);
    tracer.span_end(span);
    result
}

fn create_inner(
    id: &str,
    source: &SourceTree,
    patch_text: &str,
    opts: &CreateOptions,
    cache: &BuildCache,
    tracer: &mut Tracer,
) -> Result<(UpdatePack, SourceTree), CreateError> {
    tracer.emit(
        Stage::Create,
        Severity::Info,
        "create.start",
        vec![("id", id.into()), ("files", source.len().into())],
    );
    let fail = |tracer: &mut Tracer, e: CreateError| {
        tracer.emit(
            Stage::Create,
            Severity::Error,
            "create.abort",
            vec![("id", id.into()), ("msg", e.to_string().into())],
        );
        e
    };
    let patch = match Patch::parse(patch_text).map_err(CreateError::PatchParse) {
        Ok(p) => p,
        Err(e) => return Err(fail(tracer, e)),
    };
    let build_opts = opts.build_options.clone().unwrap_or_else(Options::pre_post);

    // The pre tree is typically rebuilt verbatim for every update
    // packaged against it — the whole-image memo collapses that to one
    // lookup once the first build has run.
    let (pre, pre_stats) = match build_tree_image_cached(source, &build_opts, cache) {
        Ok(built) => built,
        Err(error) => {
            return Err(fail(
                tracer,
                CreateError::Compile {
                    phase: "pre",
                    error,
                },
            ))
        }
    };
    let patched = match apply_patch_to_tree(source, &patch) {
        Ok(t) => t,
        Err(e) => return Err(fail(tracer, e)),
    };
    let (post, post_stats) = match build_tree_cached(&patched, &build_opts, cache) {
        Ok(built) => built,
        Err(error) => {
            return Err(fail(
                tracer,
                CreateError::Compile {
                    phase: "post",
                    error,
                },
            ))
        }
    };
    let mut build_stats = pre_stats;
    build_stats.absorb(post_stats);
    tracer.count("build.cache_hits", build_stats.hits);
    tracer.count("build.cache_misses", build_stats.misses);
    tracer.count("build.cache_evictions", build_stats.evictions);
    tracer.count("build.units_compiled", build_stats.units_compiled());
    tracer.emit(
        Stage::Create,
        Severity::Debug,
        "create.built",
        vec![
            ("pre_units", pre.len().into()),
            ("post_units", post.len().into()),
            ("cache_hits", build_stats.hits.into()),
            ("units_compiled", build_stats.units_compiled().into()),
        ],
    );

    let diff = diff_builds_traced(&pre, &post, tracer);
    if diff.affected().count() == 0 {
        return Err(fail(tracer, CreateError::NoEffect));
    }
    let data_changes: Vec<(String, DataChange)> = diff
        .data_changes()
        .map(|(u, c)| (u.to_string(), c.clone()))
        .collect();
    if !data_changes.is_empty() && !opts.accept_data_changes {
        return Err(fail(
            tracer,
            CreateError::DataSemantics {
                changes: data_changes,
            },
        ));
    }
    let pack = build_packs(id, &pre, &post, &diff);
    tracer.emit(
        Stage::Create,
        Severity::Info,
        "create.packaged",
        vec![
            ("id", id.into()),
            ("units", pack.units.len().into()),
            ("replaced_fns", pack.replaced_fn_count().into()),
        ],
    );
    tracer.count("create.packs_built", 1);
    Ok((pack, patched))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(files: &[(&str, &str)]) -> SourceTree {
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    const BASE: &str = "int limit = 10;\nint check(int x) {\n    if (x > limit) {\n        return 0 - 1;\n    }\n    return x;\n}\n";

    #[test]
    fn simple_create() {
        let src = tree(&[("m.kc", BASE)]);
        let patch = "\
--- a/m.kc
+++ b/m.kc
@@ -1,5 +1,5 @@
 int limit = 10;
 int check(int x) {
-    if (x > limit) {
+    if (x >= limit) {
         return 0 - 1;
     }
";
        let (pack, patched) =
            create_update("cve-x", &src, patch, &CreateOptions::default()).unwrap();
        assert_eq!(pack.units.len(), 1);
        assert_eq!(pack.replaced_fn_count(), 1);
        assert!(patched.get("m.kc").unwrap().contains(">="));
    }

    #[test]
    fn cached_post_build_compiles_only_patched_units() {
        let src = tree(&[
            ("m.kc", BASE),
            ("other.kc", "int helper_fn(int v) { return v + 7; }"),
            ("third.kc", "int third_fn() { return 3; }"),
        ]);
        let patch = "\
--- a/m.kc
+++ b/m.kc
@@ -1,5 +1,5 @@
 int limit = 10;
 int check(int x) {
-    if (x > limit) {
+    if (x >= limit) {
         return 0 - 1;
     }
";
        let cache = BuildCache::new();
        let mut tracer = Tracer::new();
        let (pack, _) = create_update_cached_traced(
            "cve-x",
            &src,
            patch,
            &CreateOptions::default(),
            &cache,
            &mut tracer,
        )
        .unwrap();
        // Pre compiles all 3 units cold; post recompiles only m.kc and
        // hits the cache for the other two.
        assert_eq!(tracer.counter("build.units_compiled"), 4);
        assert_eq!(tracer.counter("build.cache_hits"), 2);
        // A second create against the same tree: pre is fully cached.
        let mut tracer2 = Tracer::new();
        let (pack2, _) = create_update_cached_traced(
            "cve-x",
            &src,
            patch,
            &CreateOptions::default(),
            &cache,
            &mut tracer2,
        )
        .unwrap();
        assert_eq!(tracer2.counter("build.units_compiled"), 0);
        assert_eq!(tracer2.counter("build.cache_hits"), 6);
        // Byte-identical product either way (the correctness bar: the
        // differ and run-pre matching consume these bytes).
        assert_eq!(pack.to_bytes(), pack2.to_bytes());
        let (cold, _) = create_update("cve-x", &src, patch, &CreateOptions::default()).unwrap();
        assert_eq!(cold.to_bytes(), pack.to_bytes());
    }

    #[test]
    fn data_init_change_refused_by_default() {
        let src = tree(&[("m.kc", BASE)]);
        let patch = "\
--- a/m.kc
+++ b/m.kc
@@ -1,2 +1,2 @@
-int limit = 10;
+int limit = 99;
 int check(int x) {
";
        let err = create_update("cve-x", &src, patch, &CreateOptions::default()).unwrap_err();
        assert!(matches!(err, CreateError::DataSemantics { .. }));
        // With the programmer's sign-off it packages.
        let opts = CreateOptions {
            accept_data_changes: true,
            ..CreateOptions::default()
        };
        create_update("cve-x", &src, patch, &opts).unwrap();
    }

    #[test]
    fn comment_only_patch_has_no_effect() {
        let src = tree(&[("m.kc", BASE)]);
        let patch = "\
--- a/m.kc
+++ b/m.kc
@@ -1,2 +1,3 @@
 int limit = 10;
+// audited 2008-05
 int check(int x) {
";
        let err = create_update("cve-x", &src, patch, &CreateOptions::default()).unwrap_err();
        assert!(matches!(err, CreateError::NoEffect));
    }

    #[test]
    fn broken_patch_reports_post_build_failure() {
        let src = tree(&[("m.kc", BASE)]);
        let patch = "\
--- a/m.kc
+++ b/m.kc
@@ -2,3 +2,3 @@
 int check(int x) {
-    if (x > limit) {
+    if (x > limit { // syntax error
         return 0 - 1;
";
        let err = create_update("cve-x", &src, patch, &CreateOptions::default()).unwrap_err();
        assert!(matches!(err, CreateError::Compile { phase: "post", .. }));
    }

    #[test]
    fn nonapplying_patch_rejected() {
        let src = tree(&[("m.kc", BASE)]);
        let patch = "\
--- a/m.kc
+++ b/m.kc
@@ -1,1 +1,1 @@
-int completely_unrelated;
+int nope;
";
        let err = create_update("cve-x", &src, patch, &CreateOptions::default()).unwrap_err();
        assert!(matches!(err, CreateError::PatchApply(_)));
    }
}
