//! Update streams — the paper's §8 future work, implemented.
//!
//! "One could use Ksplice to create hot update packages for common
//! starting kernel configurations. People who subscribe their systems to
//! these updates would be able to transparently receive kernel hot
//! updates … without any ongoing effort from users" (§8).
//!
//! An [`UpdateStream`] is the distributor side: an ordered channel of
//! update packs, each created against the previous patch level (the
//! §5.4 previously-patched-source discipline), serialised as one blob. A
//! [`Subscriber`] is the machine side: it tracks its patch level and
//! [`Subscriber::sync`]s to the channel head, applying exactly the packs
//! it is missing, in order — or rolls back level by level.

use ksplice_kernel::Kernel;
use ksplice_lang::SourceTree;
use ksplice_patch::Patch;
use ksplice_trace::{Severity, Stage, Tracer};

use crate::apply::{ApplyError, ApplyOptions, Ksplice, UndoError};
use crate::create::{apply_patch_to_tree, create_update_traced, CreateError, CreateOptions};
use crate::package::UpdatePack;

/// A distributor's ordered channel of hot updates for one base kernel
/// configuration.
#[derive(Debug, Default)]
pub struct UpdateStream {
    /// Packs in release order; pack `i` was created against the source
    /// tree with packs `0..i` already applied.
    packs: Vec<UpdatePack>,
    /// The source tree at the channel head (for authoring the next pack).
    head_source: Option<SourceTree>,
}

/// Errors authoring a stream.
#[derive(Debug)]
pub enum StreamError {
    /// Authoring the next pack failed.
    Create(CreateError),
    /// A subscriber asked for a level the stream does not have.
    NoSuchLevel {
        /// The requested level.
        level: usize,
        /// The stream's current head level.
        head: usize,
    },
    /// Applying a pack during catch-up failed.
    Apply(ApplyError),
    /// Reversing a pack during rollback failed.
    Undo(UndoError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Create(e) => write!(f, "authoring update failed: {e}"),
            StreamError::NoSuchLevel { level, head } => {
                write!(f, "no level {level} (head is {head})")
            }
            StreamError::Apply(e) => write!(f, "sync failed: {e}"),
            StreamError::Undo(e) => write!(f, "rollback failed: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl UpdateStream {
    /// An empty channel for the given base configuration.
    pub fn new(base: SourceTree) -> UpdateStream {
        UpdateStream {
            packs: Vec::new(),
            head_source: Some(base),
        }
    }

    /// Current head patch level (0 = pristine base).
    pub fn head(&self) -> usize {
        self.packs.len()
    }

    /// Authors and publishes the next update from a unified diff against
    /// the current head source (which this advances).
    pub fn publish(
        &mut self,
        id: &str,
        patch_text: &str,
        opts: &CreateOptions,
    ) -> Result<&UpdatePack, StreamError> {
        self.publish_traced(id, patch_text, opts, &mut Tracer::disabled())
    }

    /// [`UpdateStream::publish`] with authoring events on `tracer`.
    pub fn publish_traced(
        &mut self,
        id: &str,
        patch_text: &str,
        opts: &CreateOptions,
        tracer: &mut Tracer,
    ) -> Result<&UpdatePack, StreamError> {
        let source = self.head_source.as_ref().expect("stream has a head source");
        let (pack, patched) = create_update_traced(id, source, patch_text, opts, tracer)
            .map_err(StreamError::Create)?;
        self.head_source = Some(patched);
        self.packs.push(pack);
        tracer.emit(
            Stage::Stream,
            Severity::Info,
            "stream.published",
            vec![("id", id.into()), ("level", self.packs.len().into())],
        );
        Ok(self.packs.last().expect("just pushed"))
    }

    /// Convenience: publish from old/new contents of one file.
    pub fn publish_change(
        &mut self,
        id: &str,
        path: &str,
        new_contents: &str,
    ) -> Result<&UpdatePack, StreamError> {
        let source = self.head_source.as_ref().expect("stream has a head source");
        let old = source.get(path).unwrap_or_default();
        let diff = ksplice_patch::make_diff(path, old, new_contents)
            .ok_or(StreamError::Create(CreateError::NoEffect))?;
        self.publish(id, &diff, &CreateOptions::default())
    }

    /// The packs a subscriber at `level` is missing.
    pub fn missing_from(&self, level: usize) -> Result<&[UpdatePack], StreamError> {
        self.packs.get(level..).ok_or(StreamError::NoSuchLevel {
            level,
            head: self.head(),
        })
    }

    /// The source tree at a given level (0 = base), replaying patches.
    /// Useful for provisioning fresh machines at the channel head.
    pub fn source_at(&self, _level: usize) -> Option<&SourceTree> {
        // Only the head is retained; historical levels live in the packs.
        self.head_source.as_ref()
    }

    /// Serializes the whole channel.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"KSTR");
        out.extend_from_slice(&(self.packs.len() as u32).to_le_bytes());
        for p in &self.packs {
            let body = p.to_bytes();
            out.extend_from_slice(&(body.len() as u32).to_le_bytes());
            out.extend_from_slice(&body);
        }
        out
    }

    /// Parses a serialized channel (head source is not shipped —
    /// subscribers never need it).
    pub fn parse(bytes: &[u8]) -> Result<UpdateStream, String> {
        if bytes.len() < 8 || &bytes[..4] != b"KSTR" {
            return Err("not a ksplice update stream".to_string());
        }
        let count = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let mut at = 8usize;
        let mut packs = Vec::with_capacity(count.min(1 << 12));
        for _ in 0..count {
            let len = u32::from_le_bytes(
                bytes
                    .get(at..at + 4)
                    .ok_or("truncated stream")?
                    .try_into()
                    .unwrap(),
            ) as usize;
            at += 4;
            let body = bytes.get(at..at + len).ok_or("truncated stream")?;
            at += len;
            packs.push(UpdatePack::parse(body)?);
        }
        if at != bytes.len() {
            return Err("trailing bytes in update stream".to_string());
        }
        Ok(UpdateStream {
            packs,
            head_source: None,
        })
    }
}

/// A machine subscribed to an [`UpdateStream`].
#[derive(Debug, Default)]
pub struct Subscriber {
    ksplice: Ksplice,
    level: usize,
}

impl Subscriber {
    /// A fresh subscriber at level 0 (pristine kernel).
    pub fn new() -> Subscriber {
        Subscriber::default()
    }

    /// Current patch level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Applies, in order, every pack this machine is missing; returns how
    /// many were applied. On a mid-sync failure the machine stays at the
    /// last fully-applied level.
    pub fn sync(
        &mut self,
        kernel: &mut Kernel,
        stream: &UpdateStream,
        opts: &ApplyOptions,
    ) -> Result<usize, StreamError> {
        self.sync_traced(kernel, stream, opts, &mut Tracer::disabled())
    }

    /// [`Subscriber::sync`] with per-pack apply events on `tracer`.
    pub fn sync_traced(
        &mut self,
        kernel: &mut Kernel,
        stream: &UpdateStream,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<usize, StreamError> {
        let missing = stream.missing_from(self.level)?;
        tracer.set_now(kernel.steps);
        tracer.emit(
            Stage::Stream,
            Severity::Info,
            "stream.sync_start",
            vec![
                ("level", self.level.into()),
                ("head", stream.head().into()),
                ("missing", missing.len().into()),
            ],
        );
        let mut applied = 0;
        for pack in missing {
            self.ksplice
                .apply_traced(kernel, pack, opts, tracer)
                .map_err(StreamError::Apply)?;
            self.level += 1;
            applied += 1;
            tracer.emit(
                Stage::Stream,
                Severity::Info,
                "stream.level_reached",
                vec![
                    ("id", pack.id.as_str().into()),
                    ("level", self.level.into()),
                ],
            );
        }
        tracer.count("stream.packs_applied", applied as u64);
        Ok(applied)
    }

    /// Rolls back to `target_level` (undoing in LIFO order).
    pub fn rollback_to(
        &mut self,
        kernel: &mut Kernel,
        stream: &UpdateStream,
        target_level: usize,
        opts: &ApplyOptions,
    ) -> Result<(), StreamError> {
        self.rollback_to_traced(kernel, stream, target_level, opts, &mut Tracer::disabled())
    }

    /// [`Subscriber::rollback_to`] with per-level undo events on `tracer`.
    pub fn rollback_to_traced(
        &mut self,
        kernel: &mut Kernel,
        stream: &UpdateStream,
        target_level: usize,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<(), StreamError> {
        while self.level > target_level {
            let pack = &stream.packs[self.level - 1];
            self.ksplice
                .undo_traced(kernel, &pack.id, opts, tracer)
                .map_err(StreamError::Undo)?;
            self.level -= 1;
            tracer.emit(
                Stage::Stream,
                Severity::Info,
                "stream.rolled_back",
                vec![
                    ("id", pack.id.as_str().into()),
                    ("level", self.level.into()),
                ],
            );
        }
        Ok(())
    }
}

/// Replays a stream's patches onto a base tree — what a distributor does
/// to cut the next full release alongside the hot-update channel.
pub fn replay_sources(base: &SourceTree, patch_texts: &[&str]) -> Result<SourceTree, CreateError> {
    let mut tree = base.clone();
    for text in patch_texts {
        let patch = Patch::parse(text).map_err(CreateError::PatchParse)?;
        tree = apply_patch_to_tree(&tree, &patch)?;
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksplice_lang::Options;

    fn base() -> SourceTree {
        let mut t = SourceTree::new();
        t.insert(
            "gate.kc",
            "int gate(int x) {\n    if (x > 100) {\n        return 0 - 1;\n    }\n    return x;\n}\n",
        );
        t
    }

    fn v(n: u32) -> String {
        format!(
            "int gate(int x) {{\n    if (x > {}) {{\n        return 0 - 1;\n    }}\n    return x;\n}}\n",
            100 - n * 10
        )
    }

    #[test]
    fn subscriber_syncs_to_head_and_rolls_back() {
        let mut stream = UpdateStream::new(base());
        stream.publish_change("u1", "gate.kc", &v(1)).unwrap();
        stream.publish_change("u2", "gate.kc", &v(2)).unwrap();
        stream.publish_change("u3", "gate.kc", &v(3)).unwrap();
        assert_eq!(stream.head(), 3);

        let mut kernel = Kernel::boot(&base(), &Options::distro()).unwrap();
        let mut sub = Subscriber::new();
        let n = sub
            .sync(&mut kernel, &stream, &ApplyOptions::default())
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(sub.level(), 3);
        // Level 3 rejects anything over 70.
        assert_eq!(kernel.call_function("gate", &[75]).unwrap() as i64, -1);
        assert_eq!(kernel.call_function("gate", &[65]).unwrap(), 65);

        // Re-sync is a no-op.
        assert_eq!(
            sub.sync(&mut kernel, &stream, &ApplyOptions::default())
                .unwrap(),
            0
        );

        // Roll back one level: threshold returns to 80.
        sub.rollback_to(&mut kernel, &stream, 2, &ApplyOptions::default())
            .unwrap();
        assert_eq!(kernel.call_function("gate", &[75]).unwrap(), 75);
        // And catch back up.
        assert_eq!(
            sub.sync(&mut kernel, &stream, &ApplyOptions::default())
                .unwrap(),
            1
        );
        assert_eq!(kernel.call_function("gate", &[75]).unwrap() as i64, -1);
    }

    #[test]
    fn late_subscriber_catches_up_in_one_sync() {
        let mut stream = UpdateStream::new(base());
        stream.publish_change("u1", "gate.kc", &v(1)).unwrap();
        stream.publish_change("u2", "gate.kc", &v(2)).unwrap();
        // A machine booted from the pristine base, long after.
        let mut kernel = Kernel::boot(&base(), &Options::distro()).unwrap();
        let mut sub = Subscriber::new();
        assert_eq!(
            sub.sync(&mut kernel, &stream, &ApplyOptions::default())
                .unwrap(),
            2
        );
        assert_eq!(kernel.call_function("gate", &[85]).unwrap() as i64, -1);
    }

    #[test]
    fn stream_serialization_roundtrip() {
        let mut stream = UpdateStream::new(base());
        stream.publish_change("u1", "gate.kc", &v(1)).unwrap();
        stream.publish_change("u2", "gate.kc", &v(2)).unwrap();
        let bytes = stream.to_bytes();
        let parsed = UpdateStream::parse(&bytes).unwrap();
        assert_eq!(parsed.head(), 2);
        // A subscriber can sync from the deserialized channel.
        let mut kernel = Kernel::boot(&base(), &Options::distro()).unwrap();
        let mut sub = Subscriber::new();
        assert_eq!(
            sub.sync(&mut kernel, &parsed, &ApplyOptions::default())
                .unwrap(),
            2
        );
        assert!(UpdateStream::parse(b"JUNK").is_err());
        assert!(UpdateStream::parse(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn bad_level_reported() {
        let stream = UpdateStream::new(base());
        assert!(matches!(
            stream.missing_from(5),
            Err(StreamError::NoSuchLevel { level: 5, head: 0 })
        ));
    }

    #[test]
    fn replay_reconstructs_head_source() {
        let mut stream = UpdateStream::new(base());
        let d1 =
            ksplice_patch::make_diff("gate.kc", base().get("gate.kc").unwrap(), &v(1)).unwrap();
        stream
            .publish("u1", &d1, &CreateOptions::default())
            .unwrap();
        let replayed = replay_sources(&base(), &[&d1]).unwrap();
        assert_eq!(replayed.get("gate.kc").unwrap(), v(1));
        assert_eq!(stream.source_at(1).unwrap().get("gate.kc").unwrap(), v(1));
    }
}
