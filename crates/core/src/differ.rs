//! Pre-post differencing (paper §3).
//!
//! Both trees are built with `-ffunction-sections`/`-fdata-sections`, so
//! the unit of comparison is a section. Two function sections are *equal*
//! when their instruction bytes match with every relocation field masked
//! out and their relocation lists agree symbolically (same offsets,
//! kinds, addends and symbol names). Extraneous differences — a function
//! recompiled to different-but-equivalent bytes — are safely treated as
//! changes: "we can safely replace a function with a different binary
//! representation of the same source code, even if doing so is
//! unnecessary" (§3.2).
//!
//! Data sections get the same comparison; a changed *initialiser* on a
//! pre-existing datum is exactly the "changes data init" condition of
//! Table 1 and is reported separately, because replacing code cannot fix
//! already-initialised instances — that takes programmer-written custom
//! code (§5.3).

use ksplice_object::{Object, ObjectSet, Section};
use ksplice_trace::{Severity, Stage, Tracer};

/// Why a data section was flagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataChangeKind {
    /// Same-named datum with a different initial value ("changes data
    /// init", Table 1).
    InitChanged,
    /// Same-named datum with a different size (often "adds field to
    /// struct" when the datum is a struct instance, Table 1).
    SizeChanged {
        /// Size in the pre build.
        pre: u64,
        /// Size in the post build.
        post: u64,
    },
}

/// A flagged change to a pre-existing datum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataChange {
    /// Section name, e.g. `.data.init_task`.
    pub section: String,
    /// What about the datum changed.
    pub kind: DataChangeKind,
}

/// The diff for one compilation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnitDiff {
    /// The compilation unit's name.
    pub unit: String,
    /// Function section names whose post code differs from pre (or which
    /// are new in post). These become replacement code.
    pub changed_fns: Vec<String>,
    /// The subset of `changed_fns` with no pre counterpart (functions the
    /// patch added).
    pub new_fns: Vec<String>,
    /// Function sections present in pre but absent in post (e.g. statics
    /// fully inlined away after the patch). Harmless: the old code keeps
    /// running for them unless also in `changed_fns` of callers.
    pub removed_fns: Vec<String>,
    /// Pre-existing data whose initialiser or size changed — needs custom
    /// code (or must abort).
    pub data_changes: Vec<DataChange>,
    /// Data sections that are new in post (new statics, new strings);
    /// they ship inside the primary module.
    pub new_data: Vec<String>,
}

impl UnitDiff {
    /// True when the patch had no object-level effect on this unit.
    pub fn is_empty(&self) -> bool {
        self.changed_fns.is_empty() && self.data_changes.is_empty() && self.new_data.is_empty()
    }
}

/// The whole diff between a pre and post build.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BuildDiff {
    /// One entry per compilation unit, affected or not.
    pub units: Vec<UnitDiff>,
}

impl BuildDiff {
    /// All affected (non-empty) unit diffs.
    pub fn affected(&self) -> impl Iterator<Item = &UnitDiff> {
        self.units.iter().filter(|u| !u.is_empty())
    }

    /// All data changes across units.
    pub fn data_changes(&self) -> impl Iterator<Item = (&str, &DataChange)> {
        self.units
            .iter()
            .flat_map(|u| u.data_changes.iter().map(move |d| (u.unit.as_str(), d)))
    }

    /// Total number of changed functions.
    pub fn changed_fn_count(&self) -> usize {
        self.units.iter().map(|u| u.changed_fns.len()).sum()
    }
}

/// Compares a whole pre build against a post build.
pub fn diff_builds(pre: &ObjectSet, post: &ObjectSet) -> BuildDiff {
    diff_builds_traced(pre, post, &mut Tracer::disabled())
}

/// [`diff_builds`] with per-unit decision events on `tracer`.
///
/// Emits one `differ.unit` event per affected unit (which functions
/// became replacement code and why), a `differ.data_change` warning per
/// flagged persistent-data hazard, and accumulates the
/// `differ.units_changed` / `differ.fns_changed` counters.
pub fn diff_builds_traced(pre: &ObjectSet, post: &ObjectSet, tracer: &mut Tracer) -> BuildDiff {
    let diff = diff_builds_inner(pre, post);
    if tracer.is_enabled() {
        for u in diff.affected() {
            tracer.emit(
                Stage::Differ,
                Severity::Info,
                "differ.unit",
                vec![
                    ("unit", u.unit.as_str().into()),
                    ("changed_fns", u.changed_fns.len().into()),
                    ("new_fns", u.new_fns.len().into()),
                    ("removed_fns", u.removed_fns.len().into()),
                    ("new_data", u.new_data.len().into()),
                ],
            );
            for f in &u.changed_fns {
                let new = u.new_fns.contains(f);
                tracer.emit(
                    Stage::Differ,
                    Severity::Debug,
                    "differ.replace_fn",
                    vec![
                        ("unit", u.unit.as_str().into()),
                        ("section", f.as_str().into()),
                        ("new", new.into()),
                    ],
                );
            }
            for c in &u.data_changes {
                let kind = match c.kind {
                    DataChangeKind::InitChanged => "init_changed".to_string(),
                    DataChangeKind::SizeChanged { pre, post } => {
                        format!("size_changed {pre}->{post}")
                    }
                };
                tracer.emit(
                    Stage::Differ,
                    Severity::Warn,
                    "differ.data_change",
                    vec![
                        ("unit", u.unit.as_str().into()),
                        ("section", c.section.as_str().into()),
                        ("kind", kind.into()),
                    ],
                );
            }
        }
        tracer.count("differ.units_changed", diff.affected().count() as u64);
        tracer.count("differ.fns_changed", diff.changed_fn_count() as u64);
    }
    diff
}

fn diff_builds_inner(pre: &ObjectSet, post: &ObjectSet) -> BuildDiff {
    let mut units = Vec::new();
    for (name, post_obj) in post.iter() {
        match pre.get(name) {
            Some(pre_obj) => {
                if pre_obj != post_obj {
                    units.push(diff_unit(pre_obj, post_obj));
                }
            }
            None => {
                // A whole new compilation unit: everything is new.
                let mut d = UnitDiff {
                    unit: name.to_string(),
                    ..UnitDiff::default()
                };
                for sec in &post_obj.sections {
                    if sec.is_function_text() {
                        d.changed_fns.push(sec.name.clone());
                        d.new_fns.push(sec.name.clone());
                    } else if is_data_section(sec) {
                        d.new_data.push(sec.name.clone());
                    }
                }
                units.push(d);
            }
        }
    }
    BuildDiff { units }
}

fn is_data_section(sec: &Section) -> bool {
    sec.is_alloc() && !sec.flags.exec
}

/// Diffs one unit present in both builds.
pub fn diff_unit(pre: &Object, post: &Object) -> UnitDiff {
    debug_assert_eq!(pre.name, post.name);
    let mut d = UnitDiff {
        unit: post.name.clone(),
        ..UnitDiff::default()
    };
    let mut rodata_changed: Vec<String> = Vec::new();
    for sec in &post.sections {
        if sec.is_function_text() {
            match pre.section_by_name(&sec.name) {
                None => {
                    d.changed_fns.push(sec.name.clone());
                    d.new_fns.push(sec.name.clone());
                }
                Some((_, pre_sec)) => {
                    if !sections_equivalent(pre, pre_sec, post, sec) {
                        d.changed_fns.push(sec.name.clone());
                    }
                }
            }
        } else if is_data_section(sec) {
            match pre.section_by_name(&sec.name) {
                None => d.new_data.push(sec.name.clone()),
                Some((_, pre_sec)) => {
                    let changed =
                        pre_sec.size != sec.size || !sections_equivalent(pre, pre_sec, post, sec);
                    if !changed {
                        continue;
                    }
                    if !sec.flags.write {
                        // Changed *read-only* data (string literals and
                        // friends) is not a persistent-data hazard: nobody
                        // mutates it, and the primary module ships its own
                        // copy. But the change only takes effect through
                        // code that references the new bytes — so every
                        // function referencing it must be replaced, even
                        // if its own instructions did not change.
                        rodata_changed.push(sec.name.clone());
                    } else if pre_sec.size != sec.size {
                        d.data_changes.push(DataChange {
                            section: sec.name.clone(),
                            kind: DataChangeKind::SizeChanged {
                                pre: pre_sec.size,
                                post: sec.size,
                            },
                        });
                    } else {
                        d.data_changes.push(DataChange {
                            section: sec.name.clone(),
                            kind: DataChangeKind::InitChanged,
                        });
                    }
                }
            }
        }
    }
    // Force-replace functions referencing changed read-only data.
    for ro in &rodata_changed {
        for sec in &post.sections {
            if !sec.is_function_text() || d.changed_fns.contains(&sec.name) {
                continue;
            }
            let references = sec.relocs.iter().any(|r| {
                post.symbols
                    .get(r.symbol)
                    .and_then(|s| s.def)
                    .and_then(|def| post.sections.get(def.section))
                    .is_some_and(|target| target.name == *ro)
            });
            if references {
                d.changed_fns.push(sec.name.clone());
            }
        }
    }
    for sec in &pre.sections {
        if sec.is_function_text() && post.section_by_name(&sec.name).is_none() {
            d.removed_fns.push(sec.name.clone());
        }
    }
    d
}

/// Byte equality modulo relocation fields, plus symbolic relocation-list
/// equality.
pub fn sections_equivalent(
    pre_obj: &Object,
    pre: &Section,
    post_obj: &Object,
    post: &Section,
) -> bool {
    if pre.size != post.size || pre.data.len() != post.data.len() {
        return false;
    }
    if pre.relocs.len() != post.relocs.len() {
        return false;
    }
    // Relocation lists must agree symbolically, in order.
    for (a, b) in pre.relocs.iter().zip(&post.relocs) {
        if a.offset != b.offset || a.kind != b.kind || a.addend != b.addend {
            return false;
        }
        let an = pre_obj.symbols.get(a.symbol).map(|s| s.name.as_str());
        let bn = post_obj.symbols.get(b.symbol).map(|s| s.name.as_str());
        if an != bn {
            return false;
        }
    }
    // Bytes must agree outside relocation fields.
    let mut masked = vec![false; pre.data.len()];
    for r in &pre.relocs {
        let w = r.kind.width();
        for i in 0..w {
            if let Some(m) = masked.get_mut(r.offset as usize + i) {
                *m = true;
            }
        }
    }
    pre.data
        .iter()
        .zip(&post.data)
        .zip(&masked)
        .all(|((a, b), &m)| m || a == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksplice_lang::{build_tree, Options, SourceTree};

    fn build(files: &[(&str, &str)]) -> ObjectSet {
        let t: SourceTree = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        build_tree(&t, &Options::pre_post()).unwrap()
    }

    #[test]
    fn identical_builds_have_empty_diff() {
        let src = &[("m.kc", "int f() { return 1; } int g() { return f(); }")];
        let d = diff_builds(&build(src), &build(src));
        assert_eq!(d.affected().count(), 0);
    }

    #[test]
    fn one_function_change_detected() {
        let pre = build(&[("m.kc", "int f(int x) { if (x > 0) { return x; } return 0; }\
                                    int g(int x) { int i; int s; s = 0; for (i = 0; i < x; i = i + 1) { s = s + i; } return s; }")]);
        let post = build(&[("m.kc", "int f(int x) { if (x >= 0) { return x; } return 0; }\
                                     int g(int x) { int i; int s; s = 0; for (i = 0; i < x; i = i + 1) { s = s + i; } return s; }")]);
        let d = diff_builds(&pre, &post);
        assert_eq!(d.units.len(), 1);
        assert_eq!(d.units[0].changed_fns, vec![".text.f"]);
        assert!(d.units[0].new_fns.is_empty());
        assert!(d.units[0].data_changes.is_empty());
    }

    #[test]
    fn inlined_callee_change_marks_caller_too() {
        // `check` is small: inlined into callers at -O2 even without the
        // `inline` keyword. Patching it must flag the *callers* (paper
        // §4.2 — the core safety argument for object-level diffing).
        let pre = build(&[(
            "m.kc",
            "static int check(int v) { if (v < 0) return 0; return 1; }\
             int use_a(int x) { int i; int n; n = 0; for (i = 0; i < x; i = i + 1) { n = n + check(i - 2); } return n; }\
             int use_b(int x) { int i; int n; n = 0; for (i = 0; i < x; i = i + 1) { n = n + check(i) * 2; } return n; }",
        )]);
        let post = build(&[(
            "m.kc",
            "static int check(int v) { if (v <= 0) return 0; return 1; }\
             int use_a(int x) { int i; int n; n = 0; for (i = 0; i < x; i = i + 1) { n = n + check(i - 2); } return n; }\
             int use_b(int x) { int i; int n; n = 0; for (i = 0; i < x; i = i + 1) { n = n + check(i) * 2; } return n; }",
        )]);
        let d = diff_builds(&pre, &post);
        let changed = &d.units[0].changed_fns;
        assert!(changed.contains(&".text.use_a".to_string()), "{changed:?}");
        assert!(changed.contains(&".text.use_b".to_string()), "{changed:?}");
    }

    #[test]
    fn data_init_change_flagged() {
        let pre = build(&[("m.kc", "int limit = 100; int f() { return limit; }")]);
        let post = build(&[("m.kc", "int limit = 200; int f() { return limit; }")]);
        let d = diff_builds(&pre, &post);
        assert_eq!(
            d.units[0].data_changes,
            vec![DataChange {
                section: ".data.limit".to_string(),
                kind: DataChangeKind::InitChanged,
            }]
        );
        // The code itself did not change.
        assert!(d.units[0].changed_fns.is_empty());
    }

    #[test]
    fn new_function_and_static_detected() {
        let pre = build(&[("m.kc", "int f() { return 1; }")]);
        let post = build(&[(
            "m.kc",
            "int seen[4];\
             int audit(int x) { int i; int n; n = 0; for (i = 0; i < 4; i = i + 1) { if (seen[i] == x) { n = n + 1; } } return n; }\
             int f() { return audit(1) + 1; }",
        )]);
        let d = diff_builds(&pre, &post);
        let u = &d.units[0];
        assert!(u.new_fns.contains(&".text.audit".to_string()));
        assert!(u.changed_fns.contains(&".text.f".to_string()));
        assert!(u.new_data.contains(&".bss.seen".to_string()));
        assert!(u.data_changes.is_empty());
    }

    #[test]
    fn function_interface_change_marks_callers() {
        // Changing a signature changes every caller's code (the paper's
        // implicit-cast example from §3.1, transposed).
        let pre = build(&[(
            "m.kc",
            "int callee(int a) { int i; int s; s = a; for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }\
             int caller(int x) { int i; int t; t = 0; for (i = 0; i < x; i = i + 1) { t = t + callee(x); } return t; }",
        )]);
        let post = build(&[(
            "m.kc",
            "int callee(int a, int b) { int i; int s; s = a + b; for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }\
             int caller(int x) { int i; int t; t = 0; for (i = 0; i < x; i = i + 1) { t = t + callee(x, 0); } return t; }",
        )]);
        let d = diff_builds(&pre, &post);
        let changed = &d.units[0].changed_fns;
        assert!(changed.contains(&".text.callee".to_string()));
        assert!(changed.contains(&".text.caller".to_string()));
    }

    #[test]
    fn reloc_symbol_rename_is_a_change() {
        // Identical bytes but a relocation now points at a different
        // symbol: must be detected as a change.
        let pre = build(&[(
            "m.kc",
            "int alpha; int beta;\
             int f() { int i; int s; s = 0; for (i = 0; i < 3; i = i + 1) { s = s + alpha; } return s; }",
        )]);
        let post = build(&[(
            "m.kc",
            "int alpha; int beta;\
             int f() { int i; int s; s = 0; for (i = 0; i < 3; i = i + 1) { s = s + beta; } return s; }",
        )]);
        let d = diff_builds(&pre, &post);
        assert_eq!(d.units[0].changed_fns, vec![".text.f"]);
    }

    #[test]
    fn struct_growth_shows_as_size_change() {
        let pre = build(&[(
            "m.kc",
            "struct conn { int state; }; struct conn table[8];\
             int get(int i) { return table[i].state; }",
        )]);
        let post = build(&[(
            "m.kc",
            "struct conn { int state; int audit; }; struct conn table[8];\
             int get(int i) { return table[i].state; }",
        )]);
        let d = diff_builds(&pre, &post);
        assert!(d.units[0]
            .data_changes
            .iter()
            .any(|c| matches!(c.kind, DataChangeKind::SizeChanged { .. })));
    }

    #[test]
    fn changed_string_literal_replaces_referencing_function() {
        // A string-only change leaves the function's instructions and
        // relocations identical — but the function must still be replaced
        // so the new bytes take effect (and this is NOT a Table-1 data
        // semantics problem).
        let pre = build(&[("m.kc", "int f() { printk(\"hello v1\"); return 0; }")]);
        let post = build(&[("m.kc", "int f() { printk(\"hello v2\"); return 0; }")]);
        let d = diff_builds(&pre, &post);
        assert!(d.units[0].changed_fns.contains(&".text.f".to_string()));
        assert!(d.units[0].data_changes.is_empty());
    }

    #[test]
    fn whole_new_unit() {
        let pre = build(&[("a.kc", "int f() { return 1; }")]);
        let post = build(&[
            ("a.kc", "int f() { return 1; }"),
            ("b.kc", "int newbie() { return 2; }"),
        ]);
        let d = diff_builds(&pre, &post);
        assert_eq!(d.units.len(), 1);
        assert_eq!(d.units[0].unit, "b.kc");
        assert_eq!(d.units[0].new_fns, vec![".text.newbie"]);
    }
}
