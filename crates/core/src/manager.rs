//! The update lifecycle manager: pre-flight validation, a health-probed
//! quarantine window with automatic rollback, and non-LIFO reversal of
//! stacked updates.
//!
//! The paper treats `ksplice-apply`/`ksplice-undo` as one-shot operations
//! (§5), but its own evaluation keeps 64 CVE updates live on
//! long-running kernels (§5.4, §6). Operating that fleet needs a
//! *lifecycle* around the one-shot primitives:
//!
//! * **Pre-flight gate** ([`preflight`]): a package is validated against
//!   the pack's own internal consistency, the live update set, and the
//!   kernel's symbol table *before* any kernel mutation. A rejected pack
//!   never loads a module and never reaches `stop_machine`.
//! * **Watch window** ([`UpdateManager::apply_watched`]): a freshly
//!   applied update starts [`UpdateState::Quarantined`]. Caller-supplied
//!   [`HealthProbe`]s run against the patched kernel for a configurable
//!   number of probe rounds (the kernel scheduler advances between
//!   rounds, so probes execute under the step clock). Any failure — a
//!   canary returning the wrong value, a custom check failing, or a new
//!   oops — triggers an automatic, checksum-verified rollback and the
//!   update ends [`UpdateState::RolledBack`]. Only a clean window
//!   promotes it to [`UpdateState::Committed`].
//! * **Non-LIFO undo** ([`Ksplice::undo_any_traced`]): reversing update
//!   A while a later update B is live re-points B's trampoline chain
//!   (B's patch site *is* A's replacement code when both patch the same
//!   function, §5.4) instead of refusing. A dependency check still
//!   refuses truly entangled reversals — B holding relocated references
//!   into A's loaded code — with [`UndoError::Entangled`] naming the
//!   tying symbols.

use std::collections::BTreeMap;
use std::fmt;

use ksplice_kernel::{native_addr, Kernel};
use ksplice_lang::HookKind;
use ksplice_trace::{Severity, Stage, Tracer};

use crate::apply::{
    busy_function, call_hook, cooldown, run_hooks, verify_text_restored, write_trampoline,
    ApplyError, ApplyOptions, ApplyReport, Ksplice, StopError, UndoError, UndoReport,
    TRAMPOLINE_LEN,
};
use crate::package::UpdatePack;

/// Errors from the pre-flight gate. None of these leave any trace in the
/// kernel: a rejected pack never loads a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreflightError {
    /// The pack's basic shape is wrong (empty id, no units, duplicate
    /// unit names).
    BadPack {
        /// What is malformed, for the operator.
        detail: String,
    },
    /// A replaced function is not defined by its unit's helper object,
    /// so run-pre matching could never locate it.
    MissingHelperSymbol {
        /// The inconsistent unit.
        unit: String,
        /// The function the helper fails to define.
        fn_name: String,
    },
    /// A replaced function's section is absent from the primary object,
    /// so there is no replacement code to redirect to.
    MissingPrimarySection {
        /// The inconsistent unit.
        unit: String,
        /// The missing replacement section.
        section: String,
    },
    /// The pack replaces the same function twice.
    DuplicateInPack {
        /// The doubly-replaced function.
        fn_name: String,
        /// The two units that both claim it.
        units: (String, String),
    },
    /// A live update from a *different* unit already replaces this
    /// function; applying both would chain trampolines across unrelated
    /// packages. (Re-patching the same unit is the legitimate §5.4 case
    /// and is allowed.)
    Conflict {
        /// The contested function.
        fn_name: String,
        /// The live update already patching it.
        live_update: String,
        /// The unit the live update patched it through.
        unit: String,
    },
    /// A primary relocation references a symbol that no resolution path
    /// could ever supply: not defined in the primary, not known to the
    /// helper (so run-pre binding recovery cannot see it), not in
    /// kallsyms, and not a kernel native.
    UnknownRelocTarget {
        /// The unit whose replacement code holds the relocation.
        unit: String,
        /// The unresolvable symbol.
        symbol: String,
    },
}

impl fmt::Display for PreflightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreflightError::BadPack { detail } => write!(f, "malformed pack: {detail}"),
            PreflightError::MissingHelperSymbol { unit, fn_name } => {
                write!(f, "{unit}: helper does not define replaced fn `{fn_name}`")
            }
            PreflightError::MissingPrimarySection { unit, section } => {
                write!(f, "{unit}: primary has no replacement section `{section}`")
            }
            PreflightError::DuplicateInPack { fn_name, units } => write!(
                f,
                "`{fn_name}` replaced twice in one pack (units {} and {})",
                units.0, units.1
            ),
            PreflightError::Conflict {
                fn_name,
                live_update,
                unit,
            } => write!(
                f,
                "`{fn_name}` already patched by live update {live_update} via unit {unit}"
            ),
            PreflightError::UnknownRelocTarget { unit, symbol } => {
                write!(f, "{unit}: no resolution path for reloc target `{symbol}`")
            }
        }
    }
}

impl std::error::Error for PreflightError {}

/// Validates a pack against itself, the live update set, and the
/// kernel's symbol table, without touching kernel state. Emits
/// `preflight.*` events: `preflight.start`, then `preflight.ok`,
/// `preflight.supersedes` (the legitimate §5.4 same-unit re-patch) or an
/// error-severity `preflight.reject` plus an `apply.packs_rejected`
/// count, all inside a `preflight` span.
pub fn preflight(
    ks: &Ksplice,
    kernel: &Kernel,
    pack: &UpdatePack,
    tracer: &mut Tracer,
) -> Result<(), PreflightError> {
    let span = tracer.span_start(
        Stage::Apply,
        "preflight",
        vec![("id", pack.id.as_str().into())],
    );
    let result = preflight_spanned(ks, kernel, pack, tracer);
    tracer.span_end(span);
    result
}

fn preflight_spanned(
    ks: &Ksplice,
    kernel: &Kernel,
    pack: &UpdatePack,
    tracer: &mut Tracer,
) -> Result<(), PreflightError> {
    tracer.emit(
        Stage::Apply,
        Severity::Debug,
        "preflight.start",
        vec![
            ("id", pack.id.as_str().into()),
            ("units", pack.units.len().into()),
        ],
    );
    let result = preflight_inner(ks, kernel, pack, tracer);
    match &result {
        Ok(()) => tracer.emit(
            Stage::Apply,
            Severity::Debug,
            "preflight.ok",
            vec![("id", pack.id.as_str().into())],
        ),
        Err(e) => {
            tracer.count("apply.packs_rejected", 1);
            tracer.emit(
                Stage::Apply,
                Severity::Error,
                "preflight.reject",
                vec![
                    ("id", pack.id.as_str().into()),
                    ("msg", e.to_string().into()),
                ],
            );
        }
    }
    result
}

fn preflight_inner(
    ks: &Ksplice,
    kernel: &Kernel,
    pack: &UpdatePack,
    tracer: &mut Tracer,
) -> Result<(), PreflightError> {
    // 1. Pack shape.
    if pack.id.is_empty() {
        return Err(PreflightError::BadPack {
            detail: "empty update id".to_string(),
        });
    }
    if pack.units.is_empty() {
        return Err(PreflightError::BadPack {
            detail: "no units".to_string(),
        });
    }
    let mut unit_names: Vec<&str> = pack.units.iter().map(|u| u.unit.as_str()).collect();
    unit_names.sort_unstable();
    if let Some(w) = unit_names.windows(2).find(|w| w[0] == w[1]) {
        return Err(PreflightError::BadPack {
            detail: format!("duplicate unit `{}`", w[0]),
        });
    }

    // 2. Helper/primary consistency per replaced function, and duplicate
    //    detection within the pack.
    let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
    for up in &pack.units {
        for (sec_name, fn_name) in &up.replaced_fns {
            let defined = up
                .helper
                .symbol_by_name(fn_name)
                .is_some_and(|(_, s)| s.def.is_some());
            if !defined {
                return Err(PreflightError::MissingHelperSymbol {
                    unit: up.unit.clone(),
                    fn_name: fn_name.clone(),
                });
            }
            if up.primary.section_by_name(sec_name).is_none() {
                return Err(PreflightError::MissingPrimarySection {
                    unit: up.unit.clone(),
                    section: sec_name.clone(),
                });
            }
            if let Some(prev) = seen.insert(fn_name, &up.unit) {
                return Err(PreflightError::DuplicateInPack {
                    fn_name: fn_name.clone(),
                    units: (prev.to_string(), up.unit.clone()),
                });
            }
        }
    }

    // 3. Patch-site conflicts against the live update set. The same
    //    function re-patched through the *same* unit is the §5.4
    //    stacked-update case (run-pre will match the latest replacement);
    //    through a different unit it is a conflict.
    for up in &pack.units {
        for (_, fn_name) in &up.replaced_fns {
            for live in ks.live_updates() {
                for site in live.sites.iter().filter(|s| &s.fn_name == fn_name) {
                    if site.unit != up.unit {
                        return Err(PreflightError::Conflict {
                            fn_name: fn_name.clone(),
                            live_update: live.id.clone(),
                            unit: site.unit.clone(),
                        });
                    }
                    tracer.emit(
                        Stage::Apply,
                        Severity::Info,
                        "preflight.supersedes",
                        vec![
                            ("function", fn_name.as_str().into()),
                            ("prior_update", live.id.as_str().into()),
                        ],
                    );
                }
            }
        }
    }

    // 4. Relocation-target sanity: every symbol the primary's relocations
    //    reference must have at least one possible resolution path —
    //    defined in the primary itself, visible to the helper (so §4.2
    //    binding recovery can supply it), a kallsyms global, or a kernel
    //    native. Anything else is guaranteed to abort mid-apply; catch it
    //    before any module loads.
    for up in &pack.units {
        for sec in &up.primary.sections {
            for r in &sec.relocs {
                let Some(sym) = up.primary.symbols.get(r.symbol) else {
                    continue;
                };
                if sym.name.is_empty() || sym.def.is_some() {
                    continue;
                }
                let reachable = up.helper.symbol_by_name(&sym.name).is_some()
                    || kernel.syms.lookup_global(&sym.name).is_some()
                    || native_addr(&sym.name).is_some();
                if !reachable {
                    return Err(PreflightError::UnknownRelocTarget {
                        unit: up.unit.clone(),
                        symbol: sym.name.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// One health check run against the patched kernel during the watch
/// window.
pub enum HealthProbe {
    /// Call a kernel function and require an exact return value — the
    /// canary form. A syscall returning its pre-patch (vulnerable)
    /// answer, or oopsing, fails the probe.
    Canary {
        /// Probe name for events and reports.
        name: String,
        /// Kernel function (kallsyms global) to call.
        fn_name: String,
        /// Arguments to pass.
        args: Vec<u64>,
        /// The required return value.
        expected: u64,
    },
    /// An arbitrary check (e.g. the eval crate's exploit replays).
    Custom {
        /// Probe name for events and reports.
        name: String,
        /// The check; `Err(reason)` fails the probe.
        check: ProbeCheck,
    },
}

/// The check run by a [`HealthProbe::Custom`] probe; `Err(reason)` fails
/// the probe.
pub type ProbeCheck = Box<dyn FnMut(&mut Kernel) -> Result<(), String>>;

impl HealthProbe {
    /// The probe's display name.
    pub fn name(&self) -> &str {
        match self {
            HealthProbe::Canary { name, .. } => name,
            HealthProbe::Custom { name, .. } => name,
        }
    }

    /// A canary probe: `fn_name(args...)` must return `expected`.
    pub fn canary(fn_name: &str, args: &[u64], expected: u64) -> HealthProbe {
        HealthProbe::Canary {
            name: format!("canary:{fn_name}"),
            fn_name: fn_name.to_string(),
            args: args.to_vec(),
            expected,
        }
    }

    /// Parses a CLI canary spec: `fn=expected` or `fn(arg,arg)=expected`
    /// (decimal integers; `expected` may be negative, stored two's
    /// complement).
    pub fn parse(spec: &str) -> Result<HealthProbe, String> {
        let (lhs, rhs) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad probe `{spec}` (expected `fn(args)=result`)"))?;
        let expected = rhs
            .trim()
            .parse::<i64>()
            .map_err(|_| format!("bad probe result `{rhs}` (expected an integer)"))?
            as u64;
        let lhs = lhs.trim();
        let (fn_name, args) = match lhs.split_once('(') {
            Some((name, rest)) => {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("bad probe `{spec}` (unclosed `(`)"))?;
                let args = inner
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(|a| {
                        a.parse::<i64>()
                            .map(|v| v as u64)
                            .map_err(|_| format!("bad probe argument `{a}`"))
                    })
                    .collect::<Result<Vec<u64>, String>>()?;
                (name.trim(), args)
            }
            None => (lhs, Vec::new()),
        };
        if fn_name.is_empty() {
            return Err(format!("bad probe `{spec}` (empty function name)"));
        }
        Ok(HealthProbe::canary(fn_name, &args, expected))
    }
}

impl fmt::Debug for HealthProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthProbe::Canary {
                name,
                fn_name,
                args,
                expected,
            } => f
                .debug_struct("Canary")
                .field("name", name)
                .field("fn_name", fn_name)
                .field("args", args)
                .field("expected", expected)
                .finish(),
            HealthProbe::Custom { name, .. } => {
                f.debug_struct("Custom").field("name", name).finish()
            }
        }
    }
}

/// Shape of the quarantine watch window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchPolicy {
    /// Probe rounds a fresh update must survive before commit.
    pub rounds: u32,
    /// Kernel steps the scheduler runs between probe rounds, so probes
    /// observe a kernel that has actually executed patched code paths.
    pub steps_per_round: u64,
}

impl Default for WatchPolicy {
    fn default() -> WatchPolicy {
        WatchPolicy {
            rounds: 3,
            steps_per_round: 2_000,
        }
    }
}

/// Lifecycle state of one update under management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateState {
    /// Applied, inside the watch window; not yet trusted.
    Quarantined,
    /// Survived a clean watch window.
    Committed,
    /// Automatically reversed after a failed health probe.
    RolledBack,
    /// Reversed on operator request.
    Reversed,
}

impl fmt::Display for UpdateState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UpdateState::Quarantined => "quarantined",
            UpdateState::Committed => "committed",
            UpdateState::RolledBack => "rolled-back",
            UpdateState::Reversed => "reversed",
        })
    }
}

/// Errors from the managed apply path.
#[derive(Debug)]
pub enum LifecycleError {
    /// The pre-flight gate rejected the pack; the kernel is untouched.
    Preflight(PreflightError),
    /// The underlying apply failed (and cleaned up after itself).
    Apply(ApplyError),
    /// A watch-window probe failed and the update was automatically
    /// rolled back; the kernel text is back to its pre-apply image.
    Quarantine {
        /// The rolled-back update.
        id: String,
        /// The probe that failed.
        probe: String,
        /// The round (1-based) it failed in.
        round: u32,
        /// Why the probe failed.
        reason: String,
        /// The automatic rollback's report.
        undo: Box<UndoReport>,
    },
    /// A probe failed *and* the automatic rollback could not complete;
    /// the update is still live and still quarantined. The operator must
    /// intervene.
    RollbackFailed {
        /// The stuck update.
        id: String,
        /// The probe that failed.
        probe: String,
        /// Why the probe failed.
        reason: String,
        /// Why the rollback failed.
        undo: Box<UndoError>,
    },
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Preflight(e) => write!(f, "preflight rejected: {e}"),
            LifecycleError::Apply(e) => write!(f, "apply failed: {e}"),
            LifecycleError::Quarantine {
                id,
                probe,
                round,
                reason,
                ..
            } => write!(
                f,
                "update {id} failed quarantine (probe {probe}, round {round}: {reason}); automatically rolled back"
            ),
            LifecycleError::RollbackFailed {
                id,
                probe,
                reason,
                undo,
            } => write!(
                f,
                "update {id} failed quarantine (probe {probe}: {reason}) and rollback failed: {undo}"
            ),
        }
    }
}

impl std::error::Error for LifecycleError {}

/// One row of [`UpdateManager::status`].
#[derive(Debug, Clone)]
pub struct UpdateStatus {
    /// Update id.
    pub id: String,
    /// Lifecycle state.
    pub state: UpdateState,
    /// Patch sites the update holds (held, if reversed).
    pub sites: usize,
}

/// The lifecycle layer over [`Ksplice`]: owns the core state plus the
/// per-update lifecycle states and the watch policy.
#[derive(Debug, Default)]
pub struct UpdateManager {
    ks: Ksplice,
    states: BTreeMap<String, UpdateState>,
    watch: WatchPolicy,
}

impl UpdateManager {
    /// A fresh manager with the default watch policy.
    pub fn new() -> UpdateManager {
        UpdateManager::default()
    }

    /// A fresh manager with the given watch policy.
    pub fn with_watch(watch: WatchPolicy) -> UpdateManager {
        UpdateManager {
            watch,
            ..UpdateManager::default()
        }
    }

    /// The underlying core state.
    pub fn ksplice(&self) -> &Ksplice {
        &self.ks
    }

    /// Mutable access to the underlying core state, for callers mixing
    /// managed and raw applies. Raw applies show up in [`status`] as
    /// committed (live) or reversed.
    ///
    /// [`status`]: UpdateManager::status
    pub fn ksplice_mut(&mut self) -> &mut Ksplice {
        &mut self.ks
    }

    /// The active watch policy.
    pub fn watch(&self) -> &WatchPolicy {
        &self.watch
    }

    /// The lifecycle state of an update this manager applied.
    pub fn state(&self, id: &str) -> Option<UpdateState> {
        self.states.get(id).copied()
    }

    /// Lifecycle status of every update, oldest first.
    pub fn status(&self) -> Vec<UpdateStatus> {
        self.ks
            .updates
            .iter()
            .map(|u| UpdateStatus {
                id: u.id.clone(),
                state: self.states.get(&u.id).copied().unwrap_or(if u.reversed {
                    UpdateState::Reversed
                } else {
                    UpdateState::Committed
                }),
                sites: u.sites.len(),
            })
            .collect()
    }

    /// Human-readable status table (`ksplice status`).
    pub fn render_status(&self) -> String {
        let rows = self.status();
        if rows.is_empty() {
            return "no updates\n".to_string();
        }
        let idw = rows.iter().map(|r| r.id.len()).max().unwrap_or(2).max(2);
        let mut out = format!("{:<idw$}  {:<11}  {:>5}\n", "ID", "STATE", "SITES");
        for r in &rows {
            out.push_str(&format!(
                "{:<idw$}  {:<11}  {:>5}\n",
                r.id,
                r.state.to_string(),
                r.sites
            ));
        }
        out
    }

    /// The full managed apply: pre-flight gate, apply, then the
    /// quarantine watch window. On a probe failure the update is
    /// automatically reversed (checksum-verified against the pre-apply
    /// text image) and the call returns [`LifecycleError::Quarantine`].
    pub fn apply_watched(
        &mut self,
        kernel: &mut Kernel,
        pack: &UpdatePack,
        probes: &mut [HealthProbe],
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<ApplyReport, LifecycleError> {
        tracer.set_now(kernel.steps);
        let span = tracer.span_start(
            Stage::Apply,
            "update",
            vec![("id", pack.id.as_str().into())],
        );
        let result = self.apply_watched_inner(kernel, pack, probes, opts, tracer);
        tracer.set_now(kernel.steps);
        tracer.span_end(span);
        result
    }

    fn apply_watched_inner(
        &mut self,
        kernel: &mut Kernel,
        pack: &UpdatePack,
        probes: &mut [HealthProbe],
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<ApplyReport, LifecycleError> {
        preflight(&self.ks, kernel, pack, tracer).map_err(LifecycleError::Preflight)?;
        let text_before = kernel.mem.text_checksum();
        let report = self
            .ks
            .apply_traced(kernel, pack, opts, tracer)
            .map_err(LifecycleError::Apply)?;
        self.states
            .insert(pack.id.clone(), UpdateState::Quarantined);
        let watch_span = tracer.span_start(
            Stage::Watch,
            "watch",
            vec![
                ("id", pack.id.as_str().into()),
                ("rounds", self.watch.rounds.into()),
            ],
        );
        tracer.emit(
            Stage::Watch,
            Severity::Info,
            "watch.start",
            vec![
                ("id", pack.id.as_str().into()),
                ("rounds", self.watch.rounds.into()),
                ("steps_per_round", self.watch.steps_per_round.into()),
                ("probes", probes.len().into()),
            ],
        );
        let oopses_before = kernel.oopses.len();
        // A labeled block so the failure paths fall out through the same
        // span-closing tail as the commit path.
        let watched: Result<(), LifecycleError> = 'watch: {
            for round in 1..=self.watch.rounds {
                kernel.run(self.watch.steps_per_round);
                tracer.set_now(kernel.steps);
                for pi in 0..probes.len() + 1 {
                    // After the caller's probes, one implicit check: any new
                    // oops during the window fails the round.
                    let (probe_name, outcome) = if pi < probes.len() {
                        let probe = &mut probes[pi];
                        (probe.name().to_string(), run_probe(kernel, probe))
                    } else if kernel.oopses.len() > oopses_before {
                        let oops = &kernel.oopses[oopses_before];
                        (
                            "oops-monitor".to_string(),
                            Err(format!(
                                "kernel oops on thread {} at {:#x}: {}",
                                oops.tid, oops.ip, oops.reason
                            )),
                        )
                    } else {
                        continue;
                    };
                    tracer.set_now(kernel.steps);
                    let Err(reason) = outcome else {
                        tracer.emit(
                            Stage::Watch,
                            Severity::Debug,
                            "watch.probe_ok",
                            vec![
                                ("id", pack.id.as_str().into()),
                                ("probe", probe_name.as_str().into()),
                                ("round", round.into()),
                            ],
                        );
                        continue;
                    };
                    tracer.count("watch.probes_failed", 1);
                    tracer.emit(
                        Stage::Watch,
                        Severity::Warn,
                        "watch.probe_failed",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("probe", probe_name.as_str().into()),
                            ("round", round.into()),
                            ("msg", reason.as_str().into()),
                        ],
                    );
                    tracer.count("watch.rollbacks_triggered", 1);
                    tracer.emit(
                        Stage::Watch,
                        Severity::Warn,
                        "watch.auto_rollback",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("probe", probe_name.as_str().into()),
                            ("round", round.into()),
                        ],
                    );
                    let undo = match self.ks.undo_traced(kernel, &pack.id, opts, tracer) {
                        Ok(undo) => undo,
                        Err(e) => {
                            tracer.set_now(kernel.steps);
                            break 'watch Err(LifecycleError::RollbackFailed {
                                id: pack.id.clone(),
                                probe: probe_name,
                                reason,
                                undo: Box::new(e),
                            });
                        }
                    };
                    tracer.set_now(kernel.steps);
                    verify_text_restored(kernel, tracer, Stage::Watch, text_before);
                    self.states
                        .insert(pack.id.clone(), UpdateState::RolledBack);
                    break 'watch Err(LifecycleError::Quarantine {
                        id: pack.id.clone(),
                        probe: probe_name,
                        round,
                        reason,
                        undo: Box::new(undo),
                    });
                }
                tracer.emit(
                    Stage::Watch,
                    Severity::Debug,
                    "watch.round_ok",
                    vec![("id", pack.id.as_str().into()), ("round", round.into())],
                );
            }
            Ok(())
        };
        tracer.set_now(kernel.steps);
        tracer.span_end(watch_span);
        watched?;
        self.states.insert(pack.id.clone(), UpdateState::Committed);
        tracer.count("watch.updates_committed", 1);
        tracer.emit(
            Stage::Watch,
            Severity::Info,
            "watch.committed",
            vec![
                ("id", pack.id.as_str().into()),
                ("rounds", self.watch.rounds.into()),
            ],
        );
        Ok(report)
    }

    /// Reverses any live update — newest or not — via
    /// [`Ksplice::undo_any_traced`], recording the lifecycle state.
    pub fn undo_any(
        &mut self,
        kernel: &mut Kernel,
        id: &str,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<UndoReport, UndoError> {
        let report = self.ks.undo_any_traced(kernel, id, opts, tracer)?;
        self.states.insert(id.to_string(), UpdateState::Reversed);
        Ok(report)
    }
}

/// Runs one probe. An armed [`ksplice_kernel::Fault::ProbeFail`] is
/// consulted first, so fault injection can force a failure regardless of
/// what the kernel would answer.
fn run_probe(kernel: &mut Kernel, probe: &mut HealthProbe) -> Result<(), String> {
    if kernel.faults.probe_fails(probe.name()) {
        return Err("injected probe failure".to_string());
    }
    match probe {
        HealthProbe::Canary {
            fn_name,
            args,
            expected,
            ..
        } => match kernel.call_function(fn_name, args) {
            Ok(v) if v == *expected => Ok(()),
            Ok(v) => Err(format!(
                "`{fn_name}` returned {v} ({}), expected {expected} ({})",
                v as i64, *expected as i64
            )),
            Err(e) => Err(e.to_string()),
        },
        HealthProbe::Custom { check, .. } => check(kernel),
    }
}

impl Ksplice {
    /// Reverses any live update by id, not just the newest
    /// ([`Ksplice::undo`]'s LIFO restriction).
    pub fn undo_any(
        &mut self,
        kernel: &mut Kernel,
        id: &str,
        opts: &ApplyOptions,
    ) -> Result<(), UndoError> {
        self.undo_any_traced(kernel, id, opts, &mut Tracer::disabled())
            .map(|_| ())
    }

    /// Reverses any live update by id. The newest live update takes the
    /// ordinary LIFO path. An older one is reversed by *re-pointing*: for
    /// each of its patch sites with a direct chain successor (a later
    /// update whose site is this update's replacement code for the same
    /// function, the §5.4 stacking shape), the trampoline at this
    /// update's site is rewritten to jump straight to the successor's
    /// replacement, and the successor's undo bookkeeping inherits this
    /// site's address and saved bytes; sites without a successor restore
    /// their saved bytes. A dependency check first refuses reversals
    /// where a later live update holds other references into this
    /// update's loaded code ([`UndoError::Entangled`]).
    pub fn undo_any_traced(
        &mut self,
        kernel: &mut Kernel,
        id: &str,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<UndoReport, UndoError> {
        // Fast path: the newest live update reverses the ordinary way.
        if let Some(latest_live) = self.updates.iter().rposition(|u| !u.reversed) {
            if self.updates[latest_live].id == id {
                return self.undo_traced(kernel, id, opts, tracer);
            }
        }
        tracer.set_now(kernel.steps);
        tracer.emit(
            Stage::Undo,
            Severity::Info,
            "undo.start",
            vec![("id", id.into()), ("mode", "repoint".into())],
        );
        let result = self.undo_repoint_inner(kernel, id, opts, tracer);
        tracer.set_now(kernel.steps);
        match &result {
            Ok(report) => {
                tracer.emit(
                    Stage::Undo,
                    Severity::Info,
                    "undo.committed",
                    vec![
                        ("id", id.into()),
                        ("mode", "repoint".into()),
                        ("attempts", report.attempts.into()),
                    ],
                );
                tracer.count("undo.updates_reversed", 1);
            }
            Err(e) => {
                let mut fields: Vec<(&str, ksplice_trace::Value)> =
                    vec![("id", id.into()), ("msg", e.to_string().into())];
                if let UndoError::Entangled {
                    dependent,
                    functions,
                    ..
                } = e
                {
                    fields.push(("dependent", dependent.as_str().into()));
                    fields.push(("functions", functions.join(",").into()));
                    tracer.count("undo.entangled_refusals", 1);
                }
                tracer.emit(Stage::Undo, Severity::Error, "undo.abort", fields);
            }
        }
        result
    }

    fn undo_repoint_inner(
        &mut self,
        kernel: &mut Kernel,
        id: &str,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<UndoReport, UndoError> {
        let text_before = kernel.mem.text_checksum();
        let Some(idx) = self.updates.iter().position(|u| !u.reversed && u.id == id) else {
            return Err(UndoError::NotUndoable {
                id: id.to_string(),
                reason: "no live update with this id".to_string(),
            });
        };
        let update = self.updates[idx].clone();

        // This update's loaded code: the memory regions of its primary
        // modules.
        let prefixes: Vec<String> = update
            .primary_modules
            .iter()
            .map(|m| format!("{m}:"))
            .collect();
        let owned: Vec<(u64, u64)> = kernel
            .mem
            .regions()
            .iter()
            .filter(|r| prefixes.iter().any(|p| r.name.starts_with(p.as_str())))
            .map(|r| (r.start, r.size))
            .collect();
        let within = |addr: u64| owned.iter().any(|(s, l)| addr >= *s && addr < s + l);

        // Dependency check: a later live update may sit *on* this one's
        // replacement code only as a direct chain successor (same
        // function, site == our replacement). Any other reference into
        // our modules — a patch site, a fulfilled relocation target, a
        // hook — makes the reversal unsafe.
        for later in self.updates[idx + 1..].iter().filter(|u| !u.reversed) {
            let mut tied: Vec<String> = Vec::new();
            for t in &later.sites {
                let successor = update
                    .sites
                    .iter()
                    .any(|s| t.site_addr == s.replacement_addr && t.fn_name == s.fn_name);
                if !successor && within(t.site_addr) {
                    tied.push(t.fn_name.clone());
                }
            }
            for (symbol, addr) in &later.fulfilled_relocs {
                if within(*addr) {
                    tied.push(symbol.clone());
                }
            }
            for kind in HookKind::ALL {
                if later.hooks.of(kind).iter().any(|&h| within(h)) {
                    tied.push(format!("{} hook", kind.macro_name()));
                }
            }
            tied.sort();
            tied.dedup();
            if !tied.is_empty() {
                return Err(UndoError::Entangled {
                    id: id.to_string(),
                    dependent: later.id.clone(),
                    functions: tied,
                });
            }
        }

        // Per-site plan: re-point to the chain successor's replacement,
        // or restore the saved bytes when the chain ends here.
        struct Successor {
            update: usize,
            site: usize,
            target: u64,
        }
        let mut plans: Vec<(usize, Option<Successor>)> = Vec::new();
        for (si, s) in update.sites.iter().enumerate() {
            let mut succ = None;
            for (bi, later) in self.updates.iter().enumerate().skip(idx + 1) {
                if later.reversed {
                    continue;
                }
                if let Some(ti) = later
                    .sites
                    .iter()
                    .position(|t| t.site_addr == s.replacement_addr && t.fn_name == s.fn_name)
                {
                    succ = Some(Successor {
                        update: bi,
                        site: ti,
                        target: later.sites[ti].replacement_addr,
                    });
                    break;
                }
            }
            plans.push((si, succ));
        }

        run_hooks(kernel, &update.hooks, HookKind::PreReverse).map_err(|e| match e {
            ApplyError::Hook { kind, detail } => UndoError::Hook { kind, detail },
            other => UndoError::Hook {
                kind: "ksplice_pre_reverse",
                detail: other.to_string(),
            },
        })?;

        // Same quiescence condition as the LIFO path: no thread may be
        // inside the replacement code being unloaded, nor inside the
        // original functions whose entry bytes get rewritten.
        let mut ranges: Vec<(u64, u64, String)> = update
            .sites
            .iter()
            .map(|s| (s.replacement_addr, s.replacement_len, s.fn_name.clone()))
            .collect();
        ranges.extend(
            update
                .sites
                .iter()
                .map(|s| (s.site_addr, s.site_len, format!("{} (original)", s.fn_name))),
        );
        let mut attempt = 0;
        let pause;
        loop {
            attempt += 1;
            let result = kernel.stop_machine(|k| -> Result<(), StopError> {
                if let Some((tid, fn_name)) = busy_function(k, &ranges) {
                    return Err(StopError::Busy { tid, fn_name });
                }
                // Save the current site bytes so a reverse-hook failure
                // can re-install them in-window.
                let mut prev = Vec::with_capacity(update.sites.len());
                for site in &update.sites {
                    let mut buf = [0u8; TRAMPOLINE_LEN];
                    buf.copy_from_slice(
                        k.mem
                            .peek(site.site_addr, TRAMPOLINE_LEN as u64)
                            .expect("mapped"),
                    );
                    prev.push(buf);
                }
                for (si, succ) in &plans {
                    let site = &update.sites[*si];
                    match succ {
                        Some(su) => write_trampoline(k, site.site_addr, su.target),
                        None => k.mem.poke(site.site_addr, &site.saved).expect("mapped"),
                    }
                }
                // Repointed chains are live on resume: drop any decoded
                // block still caching the old routing.
                k.flush_icache();
                for &h in update.hooks.of(HookKind::Reverse) {
                    if let Err(detail) = call_hook(k, h) {
                        for (site, buf) in update.sites.iter().zip(&prev) {
                            k.mem.poke(site.site_addr, buf).expect("mapped");
                        }
                        k.flush_icache();
                        return Err(StopError::Hook(format!("reverse hook: {detail}")));
                    }
                }
                Ok(())
            });
            tracer.set_now(kernel.steps);
            tracer.count("undo.stop_machine_attempts", 1);
            let pause_us = kernel
                .last_stop_machine
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            tracer.observe("undo.pause_us", pause_us);
            match result {
                Ok(()) => {
                    pause = kernel.last_stop_machine.unwrap_or_default();
                    tracer.emit(
                        Stage::Undo,
                        Severity::Info,
                        "undo.stop_machine",
                        vec![
                            ("attempt", attempt.into()),
                            ("ok", true.into()),
                            ("pause_us", pause_us.into()),
                        ],
                    );
                    tracer.count("vm.icache_flush", 1);
                    break;
                }
                Err(e) => {
                    let (busy_tid, busy_fn, hook_detail) = match e {
                        StopError::Busy { tid, fn_name } => (tid, fn_name, None),
                        // Unreachable here: this site uses the infallible
                        // stop_machine, which never consults the barrier
                        // fault — but the match must stay exhaustive.
                        StopError::Barrier { cpu } => {
                            (cpu as u64, format!("<barrier:cpu{cpu}>"), None)
                        }
                        StopError::Hook(detail) => (0, String::new(), Some(detail)),
                    };
                    tracer.emit(
                        Stage::Undo,
                        Severity::Warn,
                        "undo.stop_machine",
                        vec![
                            ("attempt", attempt.into()),
                            ("ok", false.into()),
                            ("pause_us", pause_us.into()),
                            ("busy_tid", busy_tid.into()),
                            (
                                "busy_fn",
                                hook_detail
                                    .clone()
                                    .unwrap_or_else(|| busy_fn.clone())
                                    .into(),
                            ),
                        ],
                    );
                    if attempt < opts.retry.max_attempts && hook_detail.is_none() {
                        let delay = opts.retry.delay_steps(attempt);
                        tracer.emit(
                            Stage::Undo,
                            Severity::Debug,
                            "undo.retry_delay",
                            vec![("attempt", attempt.into()), ("steps", delay.into())],
                        );
                        kernel.run(delay);
                        tracer.set_now(kernel.steps);
                        continue;
                    }
                    cooldown(kernel, tracer, Stage::Undo, opts.retry.cooldown_steps);
                    verify_text_restored(kernel, tracer, Stage::Undo, text_before);
                    return Err(match hook_detail {
                        Some(detail) => UndoError::Hook {
                            kind: "ksplice_reverse",
                            detail,
                        },
                        None => UndoError::NotQuiescent {
                            fn_name: busy_fn,
                            tid: busy_tid,
                            attempts: attempt,
                        },
                    });
                }
            }
        }

        // Commit the bookkeeping: each successor inherits the reversed
        // site's address, length and saved original bytes, so a later
        // undo of the successor restores the true original function.
        let mut repointed = 0u64;
        for (si, succ) in &plans {
            let site = &update.sites[*si];
            match succ {
                Some(su) => {
                    repointed += 1;
                    tracer.emit(
                        Stage::Undo,
                        Severity::Debug,
                        "undo.repointed",
                        vec![
                            ("function", site.fn_name.as_str().into()),
                            ("site_addr", site.site_addr.into()),
                            ("target", su.target.into()),
                            ("successor", self.updates[su.update].id.as_str().into()),
                        ],
                    );
                    let t = &mut self.updates[su.update].sites[su.site];
                    t.site_addr = site.site_addr;
                    t.site_len = site.site_len;
                    t.saved = site.saved;
                }
                None => {
                    tracer.emit(
                        Stage::Undo,
                        Severity::Debug,
                        "undo.restored",
                        vec![
                            ("function", site.fn_name.as_str().into()),
                            ("site_addr", site.site_addr.into()),
                        ],
                    );
                }
            }
        }
        if repointed > 0 {
            tracer.count("undo.sites_repointed", repointed);
        }
        run_hooks(kernel, &update.hooks, HookKind::PostReverse).ok();
        for name in &update.primary_modules {
            kernel.rmmod(name);
        }
        self.updates[idx].reversed = true;
        Ok(UndoReport {
            id: id.to_string(),
            attempts: attempt,
            pause,
            sites_restored: update.sites.len(),
        })
    }
}
