//! Ksplice: automatic rebootless kernel updates, at the object-code
//! layer (Arnold & Kaashoek, EuroSys 2009).
//!
//! The crate implements the paper's two techniques and the machinery
//! around them, against the simulated kernel of [`ksplice_kernel`]:
//!
//! * **Pre-post differencing** ([`differ`], §3): build the kernel twice —
//!   original and patched source, both with per-item sections — and diff
//!   the object code to find the functions a patch really changes,
//!   including functions the source diff never mentions (inline copies,
//!   interface changes).
//! * **Run-pre matching** ([`runpre`], §4): byte-walk each affected pre
//!   optimisation unit against the running kernel, aborting on any
//!   difference (safety) and recovering symbol addresses from relocated
//!   run bytes (`S = val + P_run − A`) to resolve names that are
//!   ambiguous in kallsyms.
//! * **Update packaging** ([`package`], §3.2/§5.1): replacement code into
//!   *primary* modules, whole pre units into *helper* modules.
//! * **`ksplice-create`** ([`create`], §5): source tree + unified diff →
//!   update pack, refusing patches that change persistent data semantics
//!   unless a programmer signs off.
//! * **`ksplice-apply` / `ksplice-undo`** ([`apply`], §5.2–§5.4): module
//!   loading, deferred relocation fulfilment, custom-code hooks, the
//!   stop_machine stack safety check with retries, trampoline insertion,
//!   reversal, and re-patching of previously-patched kernels.
//!
//! # Examples
//!
//! ```
//! use ksplice_core::{create_update, ApplyOptions, CreateOptions, Ksplice};
//! use ksplice_kernel::Kernel;
//! use ksplice_lang::{Options, SourceTree};
//!
//! let mut tree = SourceTree::new();
//! tree.insert("sys.kc", "int limit = 10;\nint check(int x) {\n    if (x > limit) {\n        return 0 - 1;\n    }\n    return x;\n}\n");
//! let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
//! assert_eq!(kernel.call_function("check", &[10]).unwrap(), 10); // off-by-one bug
//!
//! let patch = "\
//! --- a/sys.kc
//! +++ b/sys.kc
//! @@ -1,5 +1,5 @@
//!  int limit = 10;
//!  int check(int x) {
//! -    if (x > limit) {
//! +    if (x >= limit) {
//!          return 0 - 1;
//!      }
//! ";
//! let (pack, _patched) = create_update("fix", &tree, patch, &CreateOptions::default()).unwrap();
//! let mut ksplice = Ksplice::new();
//! ksplice.apply(&mut kernel, &pack, &ApplyOptions::default()).unwrap();
//! assert_eq!(kernel.call_function("check", &[10]).unwrap() as i64, -1); // fixed, no reboot
//! ```

#![deny(missing_docs)]

pub mod apply;
pub mod create;
pub mod differ;
pub mod manager;
pub mod package;
pub mod rebase;
pub mod retry;
pub mod runpre;
pub mod stream;

pub use apply::{
    AppliedUpdate, ApplyError, ApplyOptions, ApplyReport, Ksplice, PatchSite, ResolvedHooks,
    UndoError, UndoReport, TRAMPOLINE_LEN,
};
pub use manager::{
    preflight, HealthProbe, LifecycleError, PreflightError, ProbeCheck, UpdateManager,
    UpdateState, UpdateStatus, WatchPolicy,
};
pub use retry::{Backoff, RetryPolicy};
pub use create::{
    apply_patch_to_tree, create_update, create_update_cached, create_update_cached_traced,
    create_update_traced, CreateError, CreateOptions,
};
// Re-exported so callers driving the cached create path need not depend
// on `ksplice-lang` directly.
pub use ksplice_lang::{BuildCache, BuildStats};
pub use differ::{
    diff_builds, diff_builds_traced, diff_unit, BuildDiff, DataChange, DataChangeKind, UnitDiff,
};
pub use package::{build_packs, extract_primary, UnitPack, UpdatePack};
pub use rebase::{
    rebase_update, shape_similarity, FuzzyMatch, HunkPort, RebaseOptions, RebaseReport,
    RebaseStatus,
};
pub use runpre::{
    match_function, match_function_traced, match_unit, match_unit_traced, FnMatch, MatchError,
    UnitMatch,
};
pub use stream::{replay_sources, StreamError, Subscriber, UpdateStream};
// Re-exported so callers configuring `ApplyOptions::smp` need not depend
// on `ksplice-kernel` directly.
pub use ksplice_kernel::{SmpConfig, StopMachineError};

// The observability layer, re-exported so downstreams need not depend on
// `ksplice-trace` directly to drive the `_traced` entry points.
pub use ksplice_trace as trace;
pub use ksplice_trace::Tracer;
