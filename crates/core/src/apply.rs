//! Applying and reversing hot updates (paper §5).
//!
//! [`Ksplice`] is the in-kernel core module's state: the stack of applied
//! updates and the machinery of `ksplice-apply`/`ksplice-undo`. An apply
//! runs the full §5 sequence: load the helper and primary modules, run-pre
//! match every affected optimisation unit, fulfil the primary's deferred
//! relocations from the recovered bindings, run `pre_apply` hooks, then
//! under `stop_machine` perform the stack safety check (retrying a few
//! times before abandoning, §5.2) and write the trampoline jumps. Undo
//! restores the saved instruction bytes under the same safety check and
//! unloads the primary modules.

use std::collections::BTreeMap;
use std::fmt;

use ksplice_asm::Instr;
use ksplice_kernel::{apply_reloc_at, Kernel, LinkError, LoadedModule};
use ksplice_lang::HookKind;
use ksplice_object::{Object, RelocKind, SectionKind};

use crate::package::UpdatePack;
use crate::runpre::{match_unit, MatchError, UnitMatch};

/// Length of the jump trampoline written at a replaced function's entry.
pub const TRAMPOLINE_LEN: usize = 5;

/// One patched function: everything needed to redirect and to undo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchSite {
    pub unit: String,
    pub fn_name: String,
    /// Address the trampoline was written at (the obsolete code).
    pub site_addr: u64,
    /// Length of the obsolete run code (for safety checks).
    pub site_len: u64,
    /// The replacement function in the primary module.
    pub replacement_addr: u64,
    /// Length of the replacement code.
    pub replacement_len: u64,
    /// Original bytes overwritten by the trampoline.
    pub saved: [u8; TRAMPOLINE_LEN],
}

/// Hook functions resolved to kernel addresses, by kind.
#[derive(Debug, Clone, Default)]
pub struct ResolvedHooks {
    by_kind: BTreeMap<&'static str, Vec<u64>>,
}

impl ResolvedHooks {
    fn push(&mut self, kind: HookKind, addr: u64) {
        self.by_kind
            .entry(kind.section_name())
            .or_default()
            .push(addr);
    }

    /// Hook addresses for a kind, in registration order.
    pub fn of(&self, kind: HookKind) -> &[u64] {
        self.by_kind
            .get(kind.section_name())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// A successfully applied update.
#[derive(Debug, Clone)]
pub struct AppliedUpdate {
    pub id: String,
    pub sites: Vec<PatchSite>,
    /// Names of the loaded primary modules (for rmmod on undo).
    pub primary_modules: Vec<String>,
    pub hooks: ResolvedHooks,
    /// Set once reversed; a reversed update stays in history.
    pub reversed: bool,
}

/// Apply-time policy.
#[derive(Debug, Clone)]
pub struct ApplyOptions {
    /// Safety-check attempts before abandoning (paper §5.2: "If multiple
    /// such attempts are unsuccessful, then Ksplice abandons the upgrade
    /// attempt and reports the failure").
    pub max_attempts: u32,
    /// Kernel instructions to run between attempts ("tries again after a
    /// short delay").
    pub retry_delay_steps: u64,
}

impl Default for ApplyOptions {
    fn default() -> ApplyOptions {
        ApplyOptions {
            max_attempts: 5,
            retry_delay_steps: 2_000,
        }
    }
}

/// Errors from apply.
#[derive(Debug)]
pub enum ApplyError {
    /// Loading a helper or primary module failed.
    Link(LinkError),
    /// Run-pre matching aborted the update (§4.3).
    Match(MatchError),
    /// A primary relocation could not be fulfilled from bindings or
    /// unique exported symbols.
    Unresolved { unit: String, symbol: String },
    /// The safety check kept failing: some function is non-quiescent.
    NotQuiescent { fn_name: String, attempts: u32 },
    /// A replaced function is too short to hold the trampoline.
    TooShort { fn_name: String, len: u64 },
    /// A hook function failed (non-zero return or oops).
    Hook { kind: &'static str, detail: String },
    /// A replaced function vanished from the match results (internal).
    MissingMatch { fn_name: String },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Link(e) => write!(f, "module load failed: {e}"),
            ApplyError::Match(e) => write!(f, "run-pre matching aborted: {e}"),
            ApplyError::Unresolved { unit, symbol } => {
                write!(f, "{unit}: cannot resolve `{symbol}` for replacement code")
            }
            ApplyError::NotQuiescent { fn_name, attempts } => write!(
                f,
                "`{fn_name}` busy on some thread's stack after {attempts} attempts; update abandoned"
            ),
            ApplyError::TooShort { fn_name, len } => {
                write!(f, "`{fn_name}` is only {len} bytes; cannot place trampoline")
            }
            ApplyError::Hook { kind, detail } => write!(f, "{kind} hook failed: {detail}"),
            ApplyError::MissingMatch { fn_name } => {
                write!(f, "internal: no match entry for `{fn_name}`")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<LinkError> for ApplyError {
    fn from(e: LinkError) -> ApplyError {
        ApplyError::Link(e)
    }
}

impl From<MatchError> for ApplyError {
    fn from(e: MatchError) -> ApplyError {
        ApplyError::Match(e)
    }
}

/// Errors from undo.
#[derive(Debug)]
pub enum UndoError {
    /// Unknown update id, or not the most recent live update.
    NotUndoable { id: String, reason: String },
    /// Replacement code still on some stack.
    NotQuiescent { fn_name: String, attempts: u32 },
    /// A reverse hook failed.
    Hook { kind: &'static str, detail: String },
}

impl fmt::Display for UndoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UndoError::NotUndoable { id, reason } => write!(f, "cannot undo {id}: {reason}"),
            UndoError::NotQuiescent { fn_name, attempts } => write!(
                f,
                "replacement `{fn_name}` busy after {attempts} attempts; undo abandoned"
            ),
            UndoError::Hook { kind, detail } => write!(f, "{kind} hook failed: {detail}"),
        }
    }
}

impl std::error::Error for UndoError {}

/// The Ksplice core state for one kernel.
#[derive(Debug, Default)]
pub struct Ksplice {
    /// Applied updates, oldest first (reversed ones remain, flagged).
    pub updates: Vec<AppliedUpdate>,
    /// Monotonic counter for module naming.
    counter: u64,
}

impl Ksplice {
    /// Fresh core state.
    pub fn new() -> Ksplice {
        Ksplice::default()
    }

    /// The live (applied, not reversed) updates, oldest first.
    pub fn live_updates(&self) -> impl Iterator<Item = &AppliedUpdate> {
        self.updates.iter().filter(|u| !u.reversed)
    }

    /// For re-patching (§5.4): the latest replacement address for a
    /// function previously patched in `unit`, if any.
    fn latest_replacement(&self, unit: &str, fn_name: &str) -> Option<u64> {
        self.live_updates()
            .flat_map(|u| &u.sites)
            .filter(|s| s.unit == unit && s.fn_name == fn_name)
            .last()
            .map(|s| s.replacement_addr)
    }

    /// `ksplice-apply`: applies a pack to the running kernel.
    pub fn apply(
        &mut self,
        kernel: &mut Kernel,
        pack: &UpdatePack,
        opts: &ApplyOptions,
    ) -> Result<usize, ApplyError> {
        self.counter += 1;
        let tag = format!("ksplice{}_{}", self.counter, sanitize(&pack.id));

        // 1. Load helper modules (pre code; invisible to kallsyms so the
        //    matcher cannot mistake them for run code). Kept loaded until
        //    the update is committed, then unloaded to save memory (§5.1).
        let mut helper_names = Vec::new();
        for up in &pack.units {
            let mut helper = up.helper.clone();
            helper.name = format!("{tag}_helper_{}", sanitize(&up.unit));
            kernel.insmod_with(&helper, true, false)?;
            helper_names.push(helper.name);
        }
        let unload_helpers = |kernel: &mut Kernel| {
            for name in &helper_names {
                kernel.rmmod(name);
            }
        };

        // 2. Run-pre match every affected unit.
        let mut matches: BTreeMap<String, UnitMatch> = BTreeMap::new();
        for up in &pack.units {
            let mut overrides = BTreeMap::new();
            for (_, fn_name) in &up.replaced_fns {
                if let Some(addr) = self.latest_replacement(&up.unit, fn_name) {
                    overrides.insert(fn_name.clone(), addr);
                }
            }
            match match_unit(kernel, &up.helper, &overrides) {
                Ok(m) => {
                    matches.insert(up.unit.clone(), m);
                }
                Err(e) => {
                    unload_helpers(kernel);
                    return Err(e.into());
                }
            }
        }

        // 3. Load primary modules and fulfil their deferred relocations
        //    from the recovered bindings.
        let mut primaries: Vec<(String, LoadedModule, &Object)> = Vec::new();
        let mut primary_names: Vec<String> = Vec::new();
        for up in &pack.units {
            let mut primary = up.primary.clone();
            primary.name = format!("{tag}_primary_{}", sanitize(&up.unit));
            let loaded = match kernel.insmod_with(&primary, true, true) {
                Ok(m) => m,
                Err(e) => {
                    for n in &primary_names {
                        kernel.rmmod(n);
                    }
                    unload_helpers(kernel);
                    return Err(e.into());
                }
            };
            primary_names.push(primary.name.clone());
            primaries.push((up.unit.clone(), loaded, &up.primary));
        }
        let rollback_modules = |kernel: &mut Kernel| {
            for n in &primary_names {
                kernel.rmmod(n);
            }
            for n in &helper_names {
                kernel.rmmod(n);
            }
        };
        for (unit, loaded, _) in &primaries {
            let um = &matches[unit];
            for pending in &loaded.pending {
                let s = um
                    .bindings
                    .get(&pending.symbol)
                    .copied()
                    .or_else(|| kernel.syms.lookup_global(&pending.symbol).map(|s| s.addr));
                let Some(s) = s else {
                    rollback_modules(kernel);
                    return Err(ApplyError::Unresolved {
                        unit: unit.clone(),
                        symbol: pending.symbol.clone(),
                    });
                };
                if let Err(e) = apply_reloc_at(
                    &mut kernel.mem,
                    pending.kind,
                    pending.addr,
                    s,
                    pending.addend,
                ) {
                    rollback_modules(kernel);
                    return Err(ApplyError::Link(e));
                }
            }
        }

        // 4. Resolve hooks from the primary objects' .ksplice.* sections.
        let mut hooks = ResolvedHooks::default();
        for (unit, loaded, obj) in &primaries {
            if let Err(e) = resolve_hooks(kernel, unit, loaded, obj, &matches, &mut hooks) {
                rollback_modules(kernel);
                return Err(e);
            }
        }

        // 5. Build the patch sites.
        let mut sites = Vec::new();
        for (up, (_, loaded, _)) in pack.units.iter().zip(&primaries) {
            let um = &matches[&up.unit];
            for (sec_name, fn_name) in &up.replaced_fns {
                let Some(m) = um.fn_addrs.get(fn_name) else {
                    rollback_modules(kernel);
                    return Err(ApplyError::MissingMatch {
                        fn_name: fn_name.clone(),
                    });
                };
                if m.run_len < TRAMPOLINE_LEN as u64 {
                    rollback_modules(kernel);
                    return Err(ApplyError::TooShort {
                        fn_name: fn_name.clone(),
                        len: m.run_len,
                    });
                }
                let replacement_addr = loaded.symbol_addr(fn_name).unwrap_or_else(|| {
                    loaded
                        .section(sec_name)
                        .map(|(a, _)| a)
                        .expect("replacement section loaded")
                });
                let replacement_len = loaded.section(sec_name).map(|(_, l)| l).unwrap_or(0);
                sites.push(PatchSite {
                    unit: up.unit.clone(),
                    fn_name: fn_name.clone(),
                    site_addr: m.run_addr,
                    site_len: m.run_len,
                    replacement_addr,
                    replacement_len,
                    saved: [0; TRAMPOLINE_LEN],
                });
            }
        }

        // 6. pre_apply hooks (ordinary context, may sleep).
        if let Err(e) = run_hooks(kernel, &hooks, HookKind::PreApply) {
            rollback_modules(kernel);
            return Err(e);
        }

        // 7. stop_machine + safety check + trampolines, with retries.
        let ranges: Vec<(u64, u64, String)> = sites
            .iter()
            .map(|s| (s.site_addr, s.site_len, s.fn_name.clone()))
            .collect();
        let mut attempt = 0;
        loop {
            attempt += 1;
            let result = kernel.stop_machine(|k| -> Result<Vec<[u8; TRAMPOLINE_LEN]>, String> {
                if let Some(busy) = busy_function(k, &ranges) {
                    return Err(busy);
                }
                // Safe: write every trampoline.
                let mut saved = Vec::with_capacity(sites.len());
                for site in &sites {
                    let mut buf = [0u8; TRAMPOLINE_LEN];
                    buf.copy_from_slice(
                        k.mem
                            .peek(site.site_addr, TRAMPOLINE_LEN as u64)
                            .expect("matched code is mapped"),
                    );
                    saved.push(buf);
                    write_trampoline(k, site.site_addr, site.replacement_addr);
                }
                // Apply hooks run while the machine is stopped (§5.3).
                for &h in hooks.of(HookKind::Apply) {
                    if let Err(detail) = call_hook(k, h) {
                        // Roll the trampolines back before reporting.
                        for (site, orig) in sites.iter().zip(&saved) {
                            k.mem.poke(site.site_addr, orig).expect("mapped");
                        }
                        return Err(format!("apply hook: {detail}"));
                    }
                }
                Ok(saved)
            });
            match result {
                Ok(saved) => {
                    for (site, buf) in sites.iter_mut().zip(saved) {
                        site.saved = buf;
                    }
                    break;
                }
                Err(busy) if attempt < opts.max_attempts => {
                    // "Ksplice tries again after a short delay" (§5.2).
                    let _ = busy;
                    kernel.run(opts.retry_delay_steps);
                }
                Err(busy) => {
                    rollback_modules(kernel);
                    return Err(if busy.starts_with("apply hook") {
                        ApplyError::Hook {
                            kind: "ksplice_apply",
                            detail: busy,
                        }
                    } else {
                        ApplyError::NotQuiescent {
                            fn_name: busy,
                            attempts: attempt,
                        }
                    });
                }
            }
        }

        // 8. post_apply hooks; then drop the helpers to save memory
        //    (§5.1: "After an update has been applied, its helper module
        //    can be unloaded").
        // A post_apply failure is logged, not fatal: the update is live.
        if let Err(e) = run_hooks(kernel, &hooks, HookKind::PostApply) {
            kernel.klog.push(format!("ksplice: {e}"));
        }
        unload_helpers(kernel);

        self.updates.push(AppliedUpdate {
            id: pack.id.clone(),
            sites,
            primary_modules: primary_names,
            hooks,
            reversed: false,
        });
        Ok(self.updates.len() - 1)
    }

    /// `ksplice-undo`: reverses the most recent live update.
    ///
    /// Only the top of the live stack may be reversed — an older update's
    /// replacement code may be the *site* of a newer one's trampoline.
    pub fn undo(
        &mut self,
        kernel: &mut Kernel,
        id: &str,
        opts: &ApplyOptions,
    ) -> Result<(), UndoError> {
        let Some(latest_live) = self.updates.iter().rposition(|u| !u.reversed) else {
            return Err(UndoError::NotUndoable {
                id: id.to_string(),
                reason: "no live updates".to_string(),
            });
        };
        if self.updates[latest_live].id != id {
            return Err(UndoError::NotUndoable {
                id: id.to_string(),
                reason: format!(
                    "only the most recent update ({}) can be reversed",
                    self.updates[latest_live].id
                ),
            });
        }
        let update = self.updates[latest_live].clone();

        run_hooks(kernel, &update.hooks, HookKind::PreReverse).map_err(|e| match e {
            ApplyError::Hook { kind, detail } => UndoError::Hook { kind, detail },
            other => UndoError::Hook {
                kind: "ksplice_pre_reverse",
                detail: other.to_string(),
            },
        })?;

        // Reversal is safe only when no thread runs *replacement* code —
        // and, because restoring the first bytes of the original function
        // matters to threads inside it, the original ranges get the same
        // check the paper applies on the apply side.
        let mut ranges: Vec<(u64, u64, String)> = update
            .sites
            .iter()
            .map(|s| (s.replacement_addr, s.replacement_len, s.fn_name.clone()))
            .collect();
        ranges.extend(
            update
                .sites
                .iter()
                .map(|s| (s.site_addr, s.site_len, format!("{} (original)", s.fn_name))),
        );
        let mut attempt = 0;
        loop {
            attempt += 1;
            let result = kernel.stop_machine(|k| -> Result<(), String> {
                if let Some(busy) = busy_function(k, &ranges) {
                    return Err(busy);
                }
                for site in &update.sites {
                    k.mem.poke(site.site_addr, &site.saved).expect("mapped");
                }
                for &h in update.hooks.of(HookKind::Reverse) {
                    if let Err(detail) = call_hook(k, h) {
                        return Err(format!("reverse hook: {detail}"));
                    }
                }
                Ok(())
            });
            match result {
                Ok(()) => break,
                Err(busy) if attempt < opts.max_attempts => {
                    let _ = busy;
                    kernel.run(opts.retry_delay_steps);
                }
                Err(busy) => {
                    return Err(UndoError::NotQuiescent {
                        fn_name: busy,
                        attempts: attempt,
                    })
                }
            }
        }
        run_hooks(kernel, &update.hooks, HookKind::PostReverse).ok();
        for name in &update.primary_modules {
            kernel.rmmod(name);
        }
        self.updates[latest_live].reversed = true;
        Ok(())
    }
}

/// Returns the name of a function some live thread is inside, if any —
/// the §5.2 safety condition over instruction pointers and return
/// addresses.
fn busy_function(kernel: &Kernel, ranges: &[(u64, u64, String)]) -> Option<String> {
    for (_tid, backtrace) in kernel.all_backtraces() {
        for addr in backtrace {
            for (start, len, name) in ranges {
                if addr >= *start && addr < start + len {
                    return Some(name.clone());
                }
            }
        }
    }
    None
}

/// Writes the redirecting jump at a replaced function's entry.
fn write_trampoline(kernel: &mut Kernel, site: u64, target: u64) {
    let rel = target.wrapping_sub(site + TRAMPOLINE_LEN as u64) as i64;
    let rel = i32::try_from(rel).expect("arena spans < 2 GiB");
    let mut bytes = Vec::with_capacity(TRAMPOLINE_LEN);
    Instr::Jmp32(rel).encode(&mut bytes);
    debug_assert_eq!(bytes.len(), TRAMPOLINE_LEN);
    kernel
        .mem
        .poke(site, &bytes)
        .expect("matched code is mapped");
}

/// Resolves one unit's hook entries to loaded addresses.
fn resolve_hooks(
    kernel: &Kernel,
    unit: &str,
    loaded: &LoadedModule,
    obj: &Object,
    matches: &BTreeMap<String, UnitMatch>,
    out: &mut ResolvedHooks,
) -> Result<(), ApplyError> {
    for kind in HookKind::ALL {
        let Some((_, sec)) = obj.section_by_name(kind.section_name()) else {
            continue;
        };
        debug_assert_eq!(sec.kind, SectionKind::Note);
        for r in &sec.relocs {
            debug_assert_eq!(r.kind, RelocKind::Abs64);
            let name = obj
                .symbols
                .get(r.symbol)
                .map(|s| s.name.as_str())
                .unwrap_or("");
            let addr = loaded
                .symbol_addr(name)
                .or_else(|| {
                    matches
                        .get(unit)
                        .and_then(|m| m.bindings.get(name).copied())
                })
                .or_else(|| kernel.syms.lookup_global(name).map(|s| s.addr));
            let Some(addr) = addr else {
                return Err(ApplyError::Unresolved {
                    unit: unit.to_string(),
                    symbol: name.to_string(),
                });
            };
            out.push(kind, addr);
        }
    }
    Ok(())
}

/// Runs all hooks of a kind; a non-zero return or an oops aborts.
fn run_hooks(kernel: &mut Kernel, hooks: &ResolvedHooks, kind: HookKind) -> Result<(), ApplyError> {
    for &addr in hooks.of(kind) {
        call_hook(kernel, addr).map_err(|detail| ApplyError::Hook {
            kind: kind.macro_name(),
            detail,
        })?;
    }
    Ok(())
}

fn call_hook(kernel: &mut Kernel, addr: u64) -> Result<(), String> {
    match kernel.call_at(addr, &[]) {
        Ok(0) => Ok(()),
        Ok(code) => Err(format!("hook returned {code}")),
        Err(e) => Err(e.to_string()),
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}
