//! Applying and reversing hot updates (paper §5).
//!
//! [`Ksplice`] is the in-kernel core module's state: the stack of applied
//! updates and the machinery of `ksplice-apply`/`ksplice-undo`. An apply
//! runs the full §5 sequence: load the helper and primary modules, run-pre
//! match every affected optimisation unit, fulfil the primary's deferred
//! relocations from the recovered bindings, run `pre_apply` hooks, then
//! under `stop_machine` perform the stack safety check (retrying a few
//! times before abandoning, §5.2) and write the trampoline jumps. Undo
//! restores the saved instruction bytes under the same safety check and
//! unloads the primary modules.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use ksplice_asm::Instr;
use ksplice_kernel::{apply_reloc_at, Kernel, LinkError, LoadedModule, SmpConfig};
use ksplice_lang::HookKind;
use ksplice_object::{Object, RelocKind, SectionKind};
use ksplice_trace::{Severity, Stage, Tracer, Value};

use crate::package::UpdatePack;
use crate::retry::RetryPolicy;
use crate::runpre::{match_unit_traced, MatchError, UnitMatch};

/// Length of the jump trampoline written at a replaced function's entry.
pub const TRAMPOLINE_LEN: usize = 5;

/// One patched function: everything needed to redirect and to undo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchSite {
    /// Optimisation unit the function belongs to.
    pub unit: String,
    /// Name of the replaced function.
    pub fn_name: String,
    /// Address the trampoline was written at (the obsolete code).
    pub site_addr: u64,
    /// Length of the obsolete run code (for safety checks).
    pub site_len: u64,
    /// The replacement function in the primary module.
    pub replacement_addr: u64,
    /// Length of the replacement code.
    pub replacement_len: u64,
    /// Original bytes overwritten by the trampoline.
    pub saved: [u8; TRAMPOLINE_LEN],
}

/// Hook functions resolved to kernel addresses, by kind.
#[derive(Debug, Clone, Default)]
pub struct ResolvedHooks {
    by_kind: BTreeMap<&'static str, Vec<u64>>,
}

impl ResolvedHooks {
    fn push(&mut self, kind: HookKind, addr: u64) {
        self.by_kind
            .entry(kind.section_name())
            .or_default()
            .push(addr);
    }

    /// Hook addresses for a kind, in registration order.
    pub fn of(&self, kind: HookKind) -> &[u64] {
        self.by_kind
            .get(kind.section_name())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// A successfully applied update.
#[derive(Debug, Clone)]
pub struct AppliedUpdate {
    /// Update id, from the pack.
    pub id: String,
    /// Every redirected function, with its undo state.
    pub sites: Vec<PatchSite>,
    /// Names of the loaded primary modules (for rmmod on undo).
    pub primary_modules: Vec<String>,
    /// Hook addresses resolved at apply time (reverse hooks run on undo).
    pub hooks: ResolvedHooks,
    /// Relocation targets fulfilled into the primary modules at apply
    /// time, as `(symbol, resolved_addr)` pairs. The non-LIFO undo
    /// dependency check walks these to find references that point into
    /// an older update's loaded code.
    pub fulfilled_relocs: Vec<(String, u64)>,
    /// Set once reversed; a reversed update stays in history.
    pub reversed: bool,
}

/// Apply-time policy.
#[derive(Debug, Clone, Default)]
pub struct ApplyOptions {
    /// The retry schedule for the §5.2 safety-check loop (attempts,
    /// backoff shape, jitter, abandon cooldown). The default reproduces
    /// the historical fixed 5 × 2 000-step schedule.
    pub retry: RetryPolicy,
    /// The SMP topology the target kernel should run (vCPU count,
    /// quantum, scheduling seed). The default — one vCPU — keeps every
    /// historical artifact byte-identical; at `cpus > 1` the pipeline's
    /// `stop_machine` performs a real barrier rendezvous and the §5.2
    /// stack check races genuinely-running vCPU threads.
    pub smp: SmpConfig,
}

impl ApplyOptions {
    /// Options carrying the given retry schedule.
    pub fn with_retry(retry: RetryPolicy) -> ApplyOptions {
        ApplyOptions {
            retry,
            ..ApplyOptions::default()
        }
    }

    /// Options carrying the given SMP topology (default retry policy).
    pub fn with_smp(smp: SmpConfig) -> ApplyOptions {
        ApplyOptions {
            smp,
            ..ApplyOptions::default()
        }
    }
}

/// What a successful apply did — the observable shape of the §5 sequence.
#[derive(Debug, Clone)]
pub struct ApplyReport {
    /// Index of the new entry in [`Ksplice::updates`].
    pub index: usize,
    /// Update id applied.
    pub id: String,
    /// stop_machine attempts it took to capture the machine quiescent
    /// (1 = first try).
    pub attempts: u32,
    /// Pause of the *successful* stop_machine window (paper: ~0.7 ms).
    /// Recorded here, at the moment the trampolines land, so callers
    /// never pair this apply's attempts with some other stop_machine's
    /// duration read later off the kernel.
    pub pause: Duration,
    /// Simulated pause of the successful window in VM steps: barrier
    /// rendezvous (N ≥ 2) plus the stopped-machine work. Deterministic,
    /// unlike the wall-clock `pause` — this is what the SMP load
    /// experiments distribute. 0 on a quiesced uniprocessor.
    pub pause_steps: u64,
    /// Trampolines written.
    pub sites: usize,
    /// Kernel step-clock deltas per stage, in pipeline order. Stages that
    /// never run the kernel (pure bookkeeping) report 0 steps.
    pub stage_steps: Vec<(&'static str, u64)>,
}

impl ApplyReport {
    /// Human-readable multi-line rendering (`ksplice report`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "update {}: {} site(s) patched after {} stop_machine attempt(s), pause {:?}\n",
            self.id, self.sites, self.attempts, self.pause
        );
        for (stage, steps) in &self.stage_steps {
            out.push_str(&format!("  {stage:<16} {steps:>8} steps\n"));
        }
        out
    }
}

/// Errors from apply.
#[derive(Debug)]
pub enum ApplyError {
    /// Loading a helper or primary module failed.
    Link(LinkError),
    /// Run-pre matching aborted the update (§4.3).
    Match(MatchError),
    /// A primary relocation could not be fulfilled from bindings or
    /// unique exported symbols.
    Unresolved {
        /// Unit whose replacement code holds the relocation.
        unit: String,
        /// The unresolvable symbol name.
        symbol: String,
    },
    /// The safety check kept failing: some function is non-quiescent.
    NotQuiescent {
        /// The function found on a stack on the last attempt.
        fn_name: String,
        /// Thread observed inside the function on the last attempt.
        tid: u64,
        /// How many stop_machine attempts were made before abandoning.
        attempts: u32,
    },
    /// A replaced function is too short to hold the trampoline.
    TooShort {
        /// The too-short function.
        fn_name: String,
        /// Its length in bytes (< [`TRAMPOLINE_LEN`]).
        len: u64,
    },
    /// A hook function failed (non-zero return or oops).
    Hook {
        /// Which hook kind failed (`pre_apply`, `check_apply`, …).
        kind: &'static str,
        /// What went wrong, for the operator.
        detail: String,
    },
    /// A replaced function vanished from the match results (internal).
    MissingMatch {
        /// The function with no match entry.
        fn_name: String,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Link(e) => write!(f, "module load failed: {e}"),
            ApplyError::Match(e) => write!(f, "run-pre matching aborted: {e}"),
            ApplyError::Unresolved { unit, symbol } => {
                write!(f, "{unit}: cannot resolve `{symbol}` for replacement code")
            }
            ApplyError::NotQuiescent {
                fn_name,
                tid,
                attempts,
            } => write!(
                f,
                "`{fn_name}` busy on thread {tid}'s stack after {attempts} attempts; update abandoned"
            ),
            ApplyError::TooShort { fn_name, len } => {
                write!(f, "`{fn_name}` is only {len} bytes; cannot place trampoline")
            }
            ApplyError::Hook { kind, detail } => write!(f, "{kind} hook failed: {detail}"),
            ApplyError::MissingMatch { fn_name } => {
                write!(f, "internal: no match entry for `{fn_name}`")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<LinkError> for ApplyError {
    fn from(e: LinkError) -> ApplyError {
        ApplyError::Link(e)
    }
}

impl From<MatchError> for ApplyError {
    fn from(e: MatchError) -> ApplyError {
        ApplyError::Match(e)
    }
}

/// What a successful undo did — the reversal mirror of [`ApplyReport`].
///
/// `attempts` and `pause` come from the *same* stop_machine window, so
/// callers never pair this undo's attempt count with some other
/// stop_machine's duration read later off the kernel (the same race
/// [`ApplyReport`] closes on the apply side).
#[derive(Debug, Clone)]
pub struct UndoReport {
    /// Update id reversed.
    pub id: String,
    /// stop_machine attempts the reversal took (1 = first try).
    pub attempts: u32,
    /// Pause of the *successful* stop_machine window.
    pub pause: Duration,
    /// Patch sites whose original bytes were restored.
    pub sites_restored: usize,
}

impl UndoReport {
    /// Human-readable multi-line rendering, the reversal mirror of
    /// [`ApplyReport::render`] (`ksplice demo --undo`, `ksplice status`).
    pub fn render(&self) -> String {
        format!(
            "update {}: {} site(s) restored after {} stop_machine attempt(s), pause {:?}\n",
            self.id, self.sites_restored, self.attempts, self.pause
        )
    }
}

/// Errors from undo.
#[derive(Debug)]
pub enum UndoError {
    /// Unknown update id, or not the most recent live update.
    NotUndoable {
        /// The id the caller asked to undo.
        id: String,
        /// Why it cannot be undone.
        reason: String,
    },
    /// Replacement code still on some stack.
    NotQuiescent {
        /// The replacement function found on a stack on the last attempt.
        fn_name: String,
        /// Thread observed inside the function on the last attempt.
        tid: u64,
        /// How many stop_machine attempts were made before abandoning.
        attempts: u32,
    },
    /// A reverse hook failed.
    Hook {
        /// Which hook kind failed (`pre_reverse`, `reverse`, …).
        kind: &'static str,
        /// What went wrong, for the operator.
        detail: String,
    },
    /// A later live update holds references into this one's loaded code,
    /// so reversing it out of order would leave dangling targets. The
    /// caller must reverse the dependent update first.
    Entangled {
        /// The id the caller asked to undo.
        id: String,
        /// The later live update that depends on it.
        dependent: String,
        /// The symbols/functions whose references tie the two together.
        functions: Vec<String>,
    },
}

impl fmt::Display for UndoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UndoError::NotUndoable { id, reason } => write!(f, "cannot undo {id}: {reason}"),
            UndoError::NotQuiescent {
                fn_name,
                tid,
                attempts,
            } => write!(
                f,
                "replacement `{fn_name}` busy on thread {tid}'s stack after {attempts} attempts; undo abandoned"
            ),
            UndoError::Hook { kind, detail } => write!(f, "{kind} hook failed: {detail}"),
            UndoError::Entangled {
                id,
                dependent,
                functions,
            } => write!(
                f,
                "cannot undo {id}: live update {dependent} depends on it via [{}]; reverse {dependent} first",
                functions.join(", ")
            ),
        }
    }
}

impl std::error::Error for UndoError {}

/// The Ksplice core state for one kernel.
#[derive(Debug, Default)]
pub struct Ksplice {
    /// Applied updates, oldest first (reversed ones remain, flagged).
    pub updates: Vec<AppliedUpdate>,
    /// Monotonic counter for module naming.
    counter: u64,
}

impl Ksplice {
    /// Fresh core state.
    pub fn new() -> Ksplice {
        Ksplice::default()
    }

    /// The live (applied, not reversed) updates, oldest first.
    pub fn live_updates(&self) -> impl Iterator<Item = &AppliedUpdate> {
        self.updates.iter().filter(|u| !u.reversed)
    }

    /// `ksplice-apply`: applies a pack to the running kernel.
    pub fn apply(
        &mut self,
        kernel: &mut Kernel,
        pack: &UpdatePack,
        opts: &ApplyOptions,
    ) -> Result<usize, ApplyError> {
        self.apply_traced(kernel, pack, opts, &mut Tracer::disabled())
            .map(|r| r.index)
    }

    /// [`Ksplice::apply`] with the full §5 evidence trail on `tracer`:
    /// one event per stop_machine attempt (with the blocking thread and
    /// function on a stack-check rejection), retry delays, trampoline
    /// writes, and per-stage step timings in the returned [`ApplyReport`].
    pub fn apply_traced(
        &mut self,
        kernel: &mut Kernel,
        pack: &UpdatePack,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<ApplyReport, ApplyError> {
        tracer.set_now(kernel.steps);
        let span = tracer.span_start(Stage::Apply, "apply", vec![("id", pack.id.as_str().into())]);
        let result = self.apply_inner(kernel, pack, opts, tracer);
        tracer.set_now(kernel.steps);
        tracer.span_end(span);
        result
    }

    fn apply_inner(
        &mut self,
        kernel: &mut Kernel,
        pack: &UpdatePack,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<ApplyReport, ApplyError> {
        self.counter += 1;
        let tag = format!("ksplice{}_{}", self.counter, sanitize(&pack.id));
        tracer.set_now(kernel.steps);
        tracer.emit(
            Stage::Apply,
            Severity::Info,
            "apply.start",
            vec![
                ("id", pack.id.as_str().into()),
                ("units", pack.units.len().into()),
            ],
        );
        let mut stage_steps: Vec<(&'static str, u64)> = Vec::new();
        let mut stage_start = kernel.steps;
        // The clean-abort invariant: every abort path below must leave
        // the kernel's mapped text byte-identical to this pre-apply
        // image (no half-written trampolines, no leftover module code).
        let text_before = kernel.mem.text_checksum();

        // 1. Load helper modules (pre code; invisible to kallsyms so the
        //    matcher cannot mistake them for run code). Kept loaded until
        //    the update is committed, then unloaded to save memory (§5.1).
        let mut helper_names: Vec<String> = Vec::new();
        for up in &pack.units {
            let mut helper = up.helper.clone();
            helper.name = format!("{tag}_helper_{}", sanitize(&up.unit));
            if let Err(e) = kernel.insmod_with(&helper, true, false) {
                // Unload the helpers already in: a partial set must not
                // outlive the abort.
                for name in &helper_names {
                    kernel.rmmod(name);
                }
                verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                tracer.emit(
                    Stage::Apply,
                    Severity::Error,
                    "apply.abort",
                    vec![
                        ("id", pack.id.as_str().into()),
                        ("stage", "load_helpers".into()),
                        ("msg", e.to_string().into()),
                    ],
                );
                return Err(e.into());
            }
            helper_names.push(helper.name);
        }
        let unload_helpers = |kernel: &mut Kernel| {
            for name in &helper_names {
                kernel.rmmod(name);
            }
        };
        stage_steps.push(("load_helpers", kernel.steps - stage_start));
        stage_start = kernel.steps;

        // 2. Run-pre match every affected unit.
        let mut matches: BTreeMap<String, UnitMatch> = BTreeMap::new();
        for up in &pack.units {
            // §5.4: every function of this unit previously patched by a
            // live update must be matched against its *latest* replacement
            // code — both functions this pack replaces again and functions
            // it merely calls. Live updates iterate oldest first, so later
            // inserts win and the map holds the newest replacement.
            let mut overrides = BTreeMap::new();
            for live in self.live_updates() {
                for s in live.sites.iter().filter(|s| s.unit == up.unit) {
                    overrides.insert(s.fn_name.clone(), s.replacement_addr);
                }
            }
            match match_unit_traced(kernel, &up.helper, &overrides, tracer) {
                Ok(m) => {
                    matches.insert(up.unit.clone(), m);
                }
                Err(e) => {
                    unload_helpers(kernel);
                    verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                    tracer.emit(
                        Stage::Apply,
                        Severity::Error,
                        "apply.abort",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("stage", "runpre".into()),
                            ("msg", e.to_string().into()),
                        ],
                    );
                    return Err(e.into());
                }
            }
        }
        stage_steps.push(("runpre", kernel.steps - stage_start));
        stage_start = kernel.steps;

        // 3. Load primary modules and fulfil their deferred relocations
        //    from the recovered bindings.
        let mut primaries: Vec<(String, LoadedModule, &Object)> = Vec::new();
        let mut primary_names: Vec<String> = Vec::new();
        for up in &pack.units {
            let mut primary = up.primary.clone();
            primary.name = format!("{tag}_primary_{}", sanitize(&up.unit));
            let loaded = match kernel.insmod_with(&primary, true, true) {
                Ok(m) => m,
                Err(e) => {
                    for n in &primary_names {
                        kernel.rmmod(n);
                    }
                    unload_helpers(kernel);
                    verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                    tracer.emit(
                        Stage::Apply,
                        Severity::Error,
                        "apply.abort",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("stage", "load_primaries".into()),
                            ("msg", e.to_string().into()),
                        ],
                    );
                    return Err(e.into());
                }
            };
            primary_names.push(primary.name.clone());
            primaries.push((up.unit.clone(), loaded, &up.primary));
        }
        let rollback_modules = |kernel: &mut Kernel| {
            for n in &primary_names {
                kernel.rmmod(n);
            }
            for n in &helper_names {
                kernel.rmmod(n);
            }
        };
        let mut fulfilled_relocs: Vec<(String, u64)> = Vec::new();
        for (unit, loaded, _) in &primaries {
            let um = &matches[unit];
            let mut fulfilled = 0u64;
            for pending in &loaded.pending {
                let s = um
                    .bindings
                    .get(&pending.symbol)
                    .copied()
                    .or_else(|| kernel.syms.lookup_global(&pending.symbol).map(|s| s.addr));
                let Some(s) = s else {
                    rollback_modules(kernel);
                    verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                    tracer.emit(
                        Stage::Apply,
                        Severity::Error,
                        "apply.abort",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("stage", "resolve".into()),
                            ("unit", unit.as_str().into()),
                            ("symbol", pending.symbol.as_str().into()),
                            ("msg", "unresolved symbol".into()),
                        ],
                    );
                    return Err(ApplyError::Unresolved {
                        unit: unit.clone(),
                        symbol: pending.symbol.clone(),
                    });
                };
                if let Err(e) = apply_reloc_at(
                    &mut kernel.mem,
                    pending.kind,
                    pending.addr,
                    s,
                    pending.addend,
                ) {
                    rollback_modules(kernel);
                    verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                    tracer.emit(
                        Stage::Apply,
                        Severity::Error,
                        "apply.abort",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("stage", "resolve".into()),
                            ("msg", e.to_string().into()),
                        ],
                    );
                    return Err(ApplyError::Link(e));
                }
                fulfilled_relocs.push((pending.symbol.clone(), s));
                fulfilled += 1;
            }
            tracer.count("apply.relocs_fulfilled", fulfilled);
            tracer.emit(
                Stage::Apply,
                Severity::Debug,
                "apply.relocs_fulfilled",
                vec![("unit", unit.as_str().into()), ("count", fulfilled.into())],
            );
        }
        stage_steps.push(("load_primaries", kernel.steps - stage_start));
        stage_start = kernel.steps;

        // 4. Resolve hooks from the primary objects' .ksplice.* sections.
        let mut hooks = ResolvedHooks::default();
        for (unit, loaded, obj) in &primaries {
            if let Err(e) = resolve_hooks(kernel, unit, loaded, obj, &matches, &mut hooks) {
                rollback_modules(kernel);
                verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                tracer.emit(
                    Stage::Apply,
                    Severity::Error,
                    "apply.abort",
                    vec![
                        ("id", pack.id.as_str().into()),
                        ("stage", "resolve_hooks".into()),
                        ("msg", e.to_string().into()),
                    ],
                );
                return Err(e);
            }
        }

        // 5. Build the patch sites.
        let mut sites = Vec::new();
        for (up, (_, loaded, _)) in pack.units.iter().zip(&primaries) {
            let um = &matches[&up.unit];
            for (sec_name, fn_name) in &up.replaced_fns {
                let Some(m) = um.fn_addrs.get(fn_name) else {
                    rollback_modules(kernel);
                    verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                    tracer.emit(
                        Stage::Apply,
                        Severity::Error,
                        "apply.abort",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("stage", "sites".into()),
                            ("function", fn_name.as_str().into()),
                            ("msg", "no match entry".into()),
                        ],
                    );
                    return Err(ApplyError::MissingMatch {
                        fn_name: fn_name.clone(),
                    });
                };
                if m.run_len < TRAMPOLINE_LEN as u64 {
                    rollback_modules(kernel);
                    verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                    tracer.emit(
                        Stage::Apply,
                        Severity::Error,
                        "apply.abort",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("stage", "sites".into()),
                            ("function", fn_name.as_str().into()),
                            ("msg", "too short for trampoline".into()),
                        ],
                    );
                    return Err(ApplyError::TooShort {
                        fn_name: fn_name.clone(),
                        len: m.run_len,
                    });
                }
                let replacement_addr = loaded.symbol_addr(fn_name).unwrap_or_else(|| {
                    loaded
                        .section(sec_name)
                        .map(|(a, _)| a)
                        .expect("replacement section loaded")
                });
                let replacement_len = loaded.section(sec_name).map(|(_, l)| l).unwrap_or(0);
                sites.push(PatchSite {
                    unit: up.unit.clone(),
                    fn_name: fn_name.clone(),
                    site_addr: m.run_addr,
                    site_len: m.run_len,
                    replacement_addr,
                    replacement_len,
                    saved: [0; TRAMPOLINE_LEN],
                });
            }
        }

        // 6. pre_apply hooks (ordinary context, may sleep).
        if !hooks.of(HookKind::PreApply).is_empty() {
            tracer.emit(
                Stage::Apply,
                Severity::Debug,
                "apply.hooks",
                vec![
                    ("kind", "pre_apply".into()),
                    ("count", hooks.of(HookKind::PreApply).len().into()),
                ],
            );
        }
        if let Err(e) = run_hooks(kernel, &hooks, HookKind::PreApply) {
            rollback_modules(kernel);
            tracer.set_now(kernel.steps);
            verify_text_restored(kernel, tracer, Stage::Apply, text_before);
            tracer.emit(
                Stage::Apply,
                Severity::Error,
                "apply.abort",
                vec![
                    ("id", pack.id.as_str().into()),
                    ("stage", "pre_apply_hooks".into()),
                    ("msg", e.to_string().into()),
                ],
            );
            return Err(e);
        }
        tracer.set_now(kernel.steps);
        stage_steps.push(("pre_apply_hooks", kernel.steps - stage_start));
        stage_start = kernel.steps;

        // 7. stop_machine + safety check + trampolines, with retries.
        let ranges: Vec<(u64, u64, String)> = sites
            .iter()
            .map(|s| (s.site_addr, s.site_len, s.fn_name.clone()))
            .collect();
        let mut attempt = 0;
        let pause;
        let pause_steps;
        loop {
            attempt += 1;
            let attempt_span = tracer.span_start(
                Stage::Apply,
                "apply.attempt",
                vec![("attempt", attempt.into())],
            );
            let evicted_before = kernel.vm_stats.blocks_evicted;
            let result = kernel.try_stop_machine(|k| -> Result<Vec<[u8; TRAMPOLINE_LEN]>, StopError> {
                if let Some((tid, fn_name)) = busy_function(k, &ranges) {
                    return Err(StopError::Busy { tid, fn_name });
                }
                // Safe: write every trampoline.
                let mut saved = Vec::with_capacity(sites.len());
                for site in &sites {
                    let mut buf = [0u8; TRAMPOLINE_LEN];
                    buf.copy_from_slice(
                        k.mem
                            .peek(site.site_addr, TRAMPOLINE_LEN as u64)
                            .expect("matched code is mapped"),
                    );
                    saved.push(buf);
                    write_trampoline(k, site.site_addr, site.replacement_addr);
                }
                // The patched text is live the instant the machine
                // resumes: flush stale decoded blocks while it is still
                // stopped, as flush_icache_range would after a text poke.
                k.flush_icache();
                // Apply hooks run while the machine is stopped (§5.3).
                for &h in hooks.of(HookKind::Apply) {
                    if let Err(detail) = call_hook(k, h) {
                        // Roll the trampolines back before reporting.
                        for (site, orig) in sites.iter().zip(&saved) {
                            k.mem.poke(site.site_addr, orig).expect("mapped");
                        }
                        k.flush_icache();
                        return Err(StopError::Hook(format!("apply hook: {detail}")));
                    }
                }
                Ok(saved)
            });
            // A barrier timeout means `f` never ran: flatten it into the
            // retryable abandon path alongside a busy stack.
            let result = match result {
                Ok(inner) => inner,
                Err(ksplice_kernel::StopMachineError::BarrierTimeout { cpu }) => {
                    Err(StopError::Barrier { cpu })
                }
            };
            tracer.set_now(kernel.steps);
            tracer.count("apply.stop_machine_attempts", 1);
            let pause_us = kernel
                .last_stop_machine
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            tracer.observe("apply.pause_us", pause_us);
            match result {
                Ok(saved) => {
                    pause = kernel.last_stop_machine.unwrap_or_default();
                    pause_steps = kernel.last_stop_machine_steps;
                    tracer.emit(
                        Stage::Apply,
                        Severity::Info,
                        "apply.stop_machine",
                        vec![
                            ("attempt", attempt.into()),
                            ("ok", true.into()),
                            ("pause_us", pause_us.into()),
                        ],
                    );
                    for (site, buf) in sites.iter_mut().zip(saved) {
                        site.saved = buf;
                        tracer.emit(
                            Stage::Apply,
                            Severity::Debug,
                            "apply.trampoline",
                            vec![
                                ("function", site.fn_name.as_str().into()),
                                ("site_addr", site.site_addr.into()),
                                ("target", site.replacement_addr.into()),
                            ],
                        );
                    }
                    tracer.count("apply.trampolines_written", sites.len() as u64);
                    tracer.count("vm.icache_flush", 1);
                    tracer.emit(
                        Stage::Apply,
                        Severity::Debug,
                        "vm.icache_flush",
                        vec![
                            ("sites", sites.len().into()),
                            ("evicted", (kernel.vm_stats.blocks_evicted - evicted_before).into()),
                        ],
                    );
                    tracer.span_end(attempt_span);
                    break;
                }
                Err(e) => {
                    let (busy_tid, busy_fn, hook_detail) = match &e {
                        StopError::Busy { tid, fn_name } => (*tid, fn_name.clone(), None),
                        StopError::Barrier { cpu } => {
                            (*cpu as u64, format!("<barrier:cpu{cpu}>"), None)
                        }
                        StopError::Hook(detail) => (0, String::new(), Some(detail.clone())),
                    };
                    tracer.emit(
                        Stage::Apply,
                        Severity::Warn,
                        "apply.stop_machine",
                        vec![
                            ("attempt", attempt.into()),
                            ("ok", false.into()),
                            ("pause_us", pause_us.into()),
                            ("busy_tid", busy_tid.into()),
                            (
                                "busy_fn",
                                hook_detail
                                    .clone()
                                    .unwrap_or_else(|| busy_fn.clone())
                                    .into(),
                            ),
                        ],
                    );
                    if attempt < opts.retry.max_attempts && hook_detail.is_none() {
                        // "Ksplice tries again after a short delay" (§5.2):
                        // the delay follows the configured backoff curve.
                        let delay = opts.retry.delay_steps(attempt);
                        tracer.emit(
                            Stage::Apply,
                            Severity::Debug,
                            "apply.retry_delay",
                            vec![("attempt", attempt.into()), ("steps", delay.into())],
                        );
                        kernel.run(delay);
                        tracer.set_now(kernel.steps);
                        tracer.span_end(attempt_span);
                        continue;
                    }
                    tracer.span_end(attempt_span);
                    rollback_modules(kernel);
                    cooldown(kernel, tracer, Stage::Apply, opts.retry.cooldown_steps);
                    verify_text_restored(kernel, tracer, Stage::Apply, text_before);
                    let err = match hook_detail {
                        Some(detail) => ApplyError::Hook {
                            kind: "ksplice_apply",
                            detail,
                        },
                        None => ApplyError::NotQuiescent {
                            fn_name: busy_fn,
                            tid: busy_tid,
                            attempts: attempt,
                        },
                    };
                    tracer.emit(
                        Stage::Apply,
                        Severity::Error,
                        "apply.abort",
                        vec![
                            ("id", pack.id.as_str().into()),
                            ("stage", "stop_machine".into()),
                            ("attempts", attempt.into()),
                            ("msg", err.to_string().into()),
                        ],
                    );
                    return Err(err);
                }
            }
        }
        stage_steps.push(("stop_machine", kernel.steps - stage_start));
        stage_start = kernel.steps;

        // 8. post_apply hooks; then drop the helpers to save memory
        //    (§5.1: "After an update has been applied, its helper module
        //    can be unloaded").
        // A post_apply failure is logged, not fatal: the update is live.
        if let Err(e) = run_hooks(kernel, &hooks, HookKind::PostApply) {
            kernel.klog.push(format!("ksplice: {e}"));
            tracer.set_now(kernel.steps);
            tracer.emit(
                Stage::Apply,
                Severity::Warn,
                "apply.post_hook_failed",
                vec![("msg", e.to_string().into())],
            );
        }
        unload_helpers(kernel);
        tracer.set_now(kernel.steps);
        stage_steps.push(("commit", kernel.steps - stage_start));

        let report = ApplyReport {
            index: self.updates.len(),
            id: pack.id.clone(),
            attempts: attempt,
            pause,
            pause_steps,
            sites: sites.len(),
            stage_steps,
        };
        tracer.emit(
            Stage::Apply,
            Severity::Info,
            "apply.committed",
            vec![
                ("id", pack.id.as_str().into()),
                ("sites", report.sites.into()),
                ("attempts", report.attempts.into()),
            ],
        );
        tracer.count("apply.updates_committed", 1);
        self.updates.push(AppliedUpdate {
            id: pack.id.clone(),
            sites,
            primary_modules: primary_names,
            hooks,
            fulfilled_relocs,
            reversed: false,
        });
        Ok(report)
    }

    /// `ksplice-undo`: reverses the most recent live update.
    ///
    /// Only the top of the live stack may be reversed — an older update's
    /// replacement code may be the *site* of a newer one's trampoline.
    /// [`Ksplice::undo_any_traced`] lifts that restriction by re-pointing
    /// trampoline chains.
    pub fn undo(
        &mut self,
        kernel: &mut Kernel,
        id: &str,
        opts: &ApplyOptions,
    ) -> Result<(), UndoError> {
        self.undo_traced(kernel, id, opts, &mut Tracer::disabled())
            .map(|_| ())
    }

    /// [`Ksplice::undo`] with per-attempt events on `tracer`. Returns an
    /// [`UndoReport`] pairing the reversal's attempt count with the pause
    /// of its successful stop_machine window.
    pub fn undo_traced(
        &mut self,
        kernel: &mut Kernel,
        id: &str,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<UndoReport, UndoError> {
        tracer.set_now(kernel.steps);
        tracer.emit(
            Stage::Undo,
            Severity::Info,
            "undo.start",
            vec![("id", id.into())],
        );
        let span = tracer.span_start(Stage::Undo, "undo", vec![("id", id.into())]);
        let result = self.undo_inner(kernel, id, opts, tracer);
        tracer.set_now(kernel.steps);
        tracer.span_end(span);
        match &result {
            Ok(report) => {
                tracer.emit(
                    Stage::Undo,
                    Severity::Info,
                    "undo.committed",
                    vec![("id", id.into()), ("attempts", report.attempts.into())],
                );
                tracer.count("undo.updates_reversed", 1);
            }
            Err(e) => {
                let mut fields: Vec<(&str, Value)> =
                    vec![("id", id.into()), ("msg", e.to_string().into())];
                if let UndoError::NotQuiescent {
                    fn_name,
                    tid,
                    attempts,
                } = e
                {
                    fields.push(("busy_fn", fn_name.as_str().into()));
                    fields.push(("busy_tid", (*tid).into()));
                    fields.push(("attempts", (*attempts).into()));
                }
                tracer.emit(Stage::Undo, Severity::Error, "undo.abort", fields);
            }
        }
        result
    }

    fn undo_inner(
        &mut self,
        kernel: &mut Kernel,
        id: &str,
        opts: &ApplyOptions,
        tracer: &mut Tracer,
    ) -> Result<UndoReport, UndoError> {
        // The abandon paths below must leave the trampolines (and all
        // other mapped text) exactly as they found them.
        let text_before = kernel.mem.text_checksum();
        let Some(latest_live) = self.updates.iter().rposition(|u| !u.reversed) else {
            return Err(UndoError::NotUndoable {
                id: id.to_string(),
                reason: "no live updates".to_string(),
            });
        };
        if self.updates[latest_live].id != id {
            return Err(UndoError::NotUndoable {
                id: id.to_string(),
                reason: format!(
                    "only the most recent update ({}) can be reversed",
                    self.updates[latest_live].id
                ),
            });
        }
        let update = self.updates[latest_live].clone();

        run_hooks(kernel, &update.hooks, HookKind::PreReverse).map_err(|e| match e {
            ApplyError::Hook { kind, detail } => UndoError::Hook { kind, detail },
            other => UndoError::Hook {
                kind: "ksplice_pre_reverse",
                detail: other.to_string(),
            },
        })?;

        // Reversal is safe only when no thread runs *replacement* code —
        // and, because restoring the first bytes of the original function
        // matters to threads inside it, the original ranges get the same
        // check the paper applies on the apply side.
        let mut ranges: Vec<(u64, u64, String)> = update
            .sites
            .iter()
            .map(|s| (s.replacement_addr, s.replacement_len, s.fn_name.clone()))
            .collect();
        ranges.extend(
            update
                .sites
                .iter()
                .map(|s| (s.site_addr, s.site_len, format!("{} (original)", s.fn_name))),
        );
        let mut attempt = 0;
        let pause;
        loop {
            attempt += 1;
            let attempt_span = tracer.span_start(
                Stage::Undo,
                "undo.attempt",
                vec![("attempt", attempt.into())],
            );
            let result = kernel.try_stop_machine(|k| -> Result<(), StopError> {
                if let Some((tid, fn_name)) = busy_function(k, &ranges) {
                    return Err(StopError::Busy { tid, fn_name });
                }
                // Save the trampoline bytes so a reverse-hook failure can
                // re-install them — the same all-or-nothing discipline the
                // apply side uses for its stopped-machine hooks.
                let mut tramps = Vec::with_capacity(update.sites.len());
                for site in &update.sites {
                    let mut buf = [0u8; TRAMPOLINE_LEN];
                    buf.copy_from_slice(
                        k.mem
                            .peek(site.site_addr, TRAMPOLINE_LEN as u64)
                            .expect("mapped"),
                    );
                    tramps.push(buf);
                    k.mem.poke(site.site_addr, &site.saved).expect("mapped");
                }
                // The original text is live again: evict every decoded
                // block that still routes through the trampolines.
                k.flush_icache();
                for &h in update.hooks.of(HookKind::Reverse) {
                    if let Err(detail) = call_hook(k, h) {
                        for (site, tramp) in update.sites.iter().zip(&tramps) {
                            k.mem.poke(site.site_addr, tramp).expect("mapped");
                        }
                        k.flush_icache();
                        return Err(StopError::Hook(format!("reverse hook: {detail}")));
                    }
                }
                Ok(())
            });
            let result = match result {
                Ok(inner) => inner,
                Err(ksplice_kernel::StopMachineError::BarrierTimeout { cpu }) => {
                    Err(StopError::Barrier { cpu })
                }
            };
            tracer.set_now(kernel.steps);
            tracer.count("undo.stop_machine_attempts", 1);
            let pause_us = kernel
                .last_stop_machine
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            tracer.observe("undo.pause_us", pause_us);
            match result {
                Ok(()) => {
                    pause = kernel.last_stop_machine.unwrap_or_default();
                    tracer.emit(
                        Stage::Undo,
                        Severity::Info,
                        "undo.stop_machine",
                        vec![
                            ("attempt", attempt.into()),
                            ("ok", true.into()),
                            ("pause_us", pause_us.into()),
                        ],
                    );
                    for site in &update.sites {
                        tracer.emit(
                            Stage::Undo,
                            Severity::Debug,
                            "undo.restored",
                            vec![
                                ("function", site.fn_name.as_str().into()),
                                ("site_addr", site.site_addr.into()),
                            ],
                        );
                    }
                    tracer.count("vm.icache_flush", 1);
                    tracer.emit(
                        Stage::Undo,
                        Severity::Debug,
                        "vm.icache_flush",
                        vec![("sites", update.sites.len().into())],
                    );
                    tracer.span_end(attempt_span);
                    break;
                }
                Err(e) => {
                    let (busy_tid, busy_fn, hook_detail) = match e {
                        StopError::Busy { tid, fn_name } => (tid, fn_name, None),
                        StopError::Barrier { cpu } => {
                            (cpu as u64, format!("<barrier:cpu{cpu}>"), None)
                        }
                        StopError::Hook(detail) => (0, String::new(), Some(detail)),
                    };
                    tracer.emit(
                        Stage::Undo,
                        Severity::Warn,
                        "undo.stop_machine",
                        vec![
                            ("attempt", attempt.into()),
                            ("ok", false.into()),
                            ("pause_us", pause_us.into()),
                            ("busy_tid", busy_tid.into()),
                            (
                                "busy_fn",
                                hook_detail
                                    .clone()
                                    .unwrap_or_else(|| busy_fn.clone())
                                    .into(),
                            ),
                        ],
                    );
                    if attempt < opts.retry.max_attempts && hook_detail.is_none() {
                        let delay = opts.retry.delay_steps(attempt);
                        tracer.emit(
                            Stage::Undo,
                            Severity::Debug,
                            "undo.retry_delay",
                            vec![("attempt", attempt.into()), ("steps", delay.into())],
                        );
                        kernel.run(delay);
                        tracer.set_now(kernel.steps);
                        tracer.span_end(attempt_span);
                        continue;
                    }
                    tracer.span_end(attempt_span);
                    cooldown(kernel, tracer, Stage::Undo, opts.retry.cooldown_steps);
                    verify_text_restored(kernel, tracer, Stage::Undo, text_before);
                    return Err(match hook_detail {
                        Some(detail) => UndoError::Hook {
                            kind: "ksplice_reverse",
                            detail,
                        },
                        None => UndoError::NotQuiescent {
                            fn_name: busy_fn,
                            tid: busy_tid,
                            attempts: attempt,
                        },
                    });
                }
            }
        }
        run_hooks(kernel, &update.hooks, HookKind::PostReverse).ok();
        for name in &update.primary_modules {
            kernel.rmmod(name);
        }
        self.updates[latest_live].reversed = true;
        Ok(UndoReport {
            id: id.to_string(),
            attempts: attempt,
            pause,
            sites_restored: update.sites.len(),
        })
    }
}

/// Why one stop_machine capture window was abandoned.
pub(crate) enum StopError {
    /// The §5.2 stack check found `fn_name` on thread `tid`'s stack.
    Busy { tid: u64, fn_name: String },
    /// The barrier rendezvous timed out: vCPU `cpu` never checked in
    /// (fault-injected). Retryable, like `Busy` — the next capture
    /// attempt rendezvouses from scratch.
    Barrier { cpu: u32 },
    /// A stopped-machine hook failed.
    Hook(String),
}

/// Runs the abandon-path cooldown, if the policy asks for one: gives
/// blocked threads `steps` instructions to drain after the rollback,
/// before the failure is reported.
pub(crate) fn cooldown(kernel: &mut Kernel, tracer: &mut Tracer, stage: Stage, steps: u64) {
    if steps == 0 {
        return;
    }
    let name = match stage {
        Stage::Undo => "undo.cooldown",
        _ => "apply.cooldown",
    };
    tracer.emit(stage, Severity::Debug, name, vec![("steps", steps.into())]);
    kernel.run(steps);
    tracer.set_now(kernel.steps);
}

/// Checks the clean-abort invariant after a rollback: mapped kernel text
/// must hash identically to the pre-apply (or pre-undo) image. Emits a
/// `*.rollback_verified` event either way; a mismatch is an `Error`
/// event plus an `undo.rollbacks_mismatched` count, never a panic — the
/// kernel must limp on so the operator can inspect it.
pub(crate) fn verify_text_restored(
    kernel: &Kernel,
    tracer: &mut Tracer,
    stage: Stage,
    expected: u64,
) -> bool {
    let restored = kernel.mem.text_checksum() == expected;
    let name = match stage {
        Stage::Undo => "undo.rollback_verified",
        Stage::Watch => "watch.rollback_verified",
        _ => "apply.rollback_verified",
    };
    tracer.emit(
        stage,
        if restored {
            Severity::Debug
        } else {
            Severity::Error
        },
        name,
        vec![("restored", restored.into())],
    );
    if !restored {
        tracer.count("undo.rollbacks_mismatched", 1);
    }
    restored
}

/// Returns the thread and name of a function some live thread is inside,
/// if any — the §5.2 safety condition over instruction pointers and
/// return addresses. An armed stack-busy fault reports a synthetic
/// occupant first, exercising the retry/abandon machinery on demand.
pub(crate) fn busy_function(
    kernel: &mut Kernel,
    ranges: &[(u64, u64, String)],
) -> Option<(u64, String)> {
    if kernel.num_cpus() > 1 {
        // At N ≥ 2 an armed stack-busy fault is realized *physically*:
        // a vCPU thread is parked at the target's entry (and released
        // once the armed windows run out), so the generic scan below
        // finds a genuine instruction pointer — no synthetic verdict.
        // The window bookkeeping and fired log march exactly as at
        // N = 1; with no fault armed this costs one integer compare.
        let addr = ranges.first().map(|&(a, _, _)| a).unwrap_or(0);
        if kernel.park_fault_vcpu(addr).is_some() {
            kernel.faults.stack_check_busy(ranges);
        }
    } else if let Some(hit) = kernel.faults.stack_check_busy(ranges) {
        return Some(hit);
    }
    for (tid, backtrace) in kernel.all_backtraces() {
        for addr in backtrace {
            for (start, len, name) in ranges {
                if addr >= *start && addr < start + len {
                    return Some((tid, name.clone()));
                }
            }
        }
    }
    None
}

/// Writes the redirecting jump at a replaced function's entry.
pub(crate) fn write_trampoline(kernel: &mut Kernel, site: u64, target: u64) {
    let rel = target.wrapping_sub(site + TRAMPOLINE_LEN as u64) as i64;
    let rel = i32::try_from(rel).expect("arena spans < 2 GiB");
    let mut bytes = Vec::with_capacity(TRAMPOLINE_LEN);
    Instr::Jmp32(rel).encode(&mut bytes);
    debug_assert_eq!(bytes.len(), TRAMPOLINE_LEN);
    kernel
        .mem
        .poke(site, &bytes)
        .expect("matched code is mapped");
}

/// Resolves one unit's hook entries to loaded addresses.
fn resolve_hooks(
    kernel: &Kernel,
    unit: &str,
    loaded: &LoadedModule,
    obj: &Object,
    matches: &BTreeMap<String, UnitMatch>,
    out: &mut ResolvedHooks,
) -> Result<(), ApplyError> {
    for kind in HookKind::ALL {
        let Some((_, sec)) = obj.section_by_name(kind.section_name()) else {
            continue;
        };
        debug_assert_eq!(sec.kind, SectionKind::Note);
        for r in &sec.relocs {
            debug_assert_eq!(r.kind, RelocKind::Abs64);
            let name = obj
                .symbols
                .get(r.symbol)
                .map(|s| s.name.as_str())
                .unwrap_or("");
            let addr = loaded
                .symbol_addr(name)
                .or_else(|| {
                    matches
                        .get(unit)
                        .and_then(|m| m.bindings.get(name).copied())
                })
                .or_else(|| kernel.syms.lookup_global(name).map(|s| s.addr));
            let Some(addr) = addr else {
                return Err(ApplyError::Unresolved {
                    unit: unit.to_string(),
                    symbol: name.to_string(),
                });
            };
            out.push(kind, addr);
        }
    }
    Ok(())
}

/// Runs all hooks of a kind; a non-zero return or an oops aborts.
pub(crate) fn run_hooks(
    kernel: &mut Kernel,
    hooks: &ResolvedHooks,
    kind: HookKind,
) -> Result<(), ApplyError> {
    for &addr in hooks.of(kind) {
        call_hook(kernel, addr).map_err(|detail| ApplyError::Hook {
            kind: kind.macro_name(),
            detail,
        })?;
    }
    Ok(())
}

pub(crate) fn call_hook(kernel: &mut Kernel, addr: u64) -> Result<(), String> {
    match kernel.call_at(addr, &[]) {
        Ok(0) => Ok(()),
        Ok(code) => Err(format!("hook returned {code}")),
        Err(e) => Err(e.to_string()),
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}
