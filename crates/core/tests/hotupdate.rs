//! End-to-end hot updates on a live simulated kernel.
//!
//! Every test follows the paper's workflow: boot a kernel from source
//! (built the way distributors ship them — monolithic sections, full
//! optimisation), construct an update with `ksplice-create` from a
//! unified diff, apply it to the *running* kernel, and observe behaviour
//! change without a reboot.

use std::collections::BTreeMap;

use ksplice_core::trace::{RingSink, Severity, Tracer};
use ksplice_core::{
    create_update, create_update_traced, match_unit, ApplyError, ApplyOptions, CreateError,
    CreateOptions, Ksplice, MatchError,
};
use ksplice_kernel::{Kernel, ThreadState};
use ksplice_lang::{build_tree, Options, SourceTree};
use ksplice_patch::make_diff;

fn tree(files: &[(&str, &str)]) -> SourceTree {
    files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

/// Builds the patched variant of a tree and renders the unified diff.
fn diff_for(src: &SourceTree, path: &str, new_content: &str) -> String {
    make_diff(path, src.get(path).expect("file exists"), new_content).expect("contents differ")
}

fn apply_ok(kernel: &mut Kernel, ks: &mut Ksplice, src: &SourceTree, id: &str, patch: &str) {
    let (pack, _) = create_update(id, src, patch, &CreateOptions::default()).unwrap();
    ks.apply(kernel, &pack, &ApplyOptions::default()).unwrap();
}

const SYS: &str = "int max_fd = 4;\n\
int table[8];\n\
int sys_write(int fd, int v) {\n\
    if (fd > max_fd) {\n\
        return 0 - 9;\n\
    }\n\
    table[fd] = v;\n\
    return v;\n\
}\n\
int sys_read(int fd) {\n\
    if (fd > max_fd) {\n\
        return 0 - 9;\n\
    }\n\
    return table[fd];\n\
}\n";

/// The fix: `>` should be `>=` in both bounds checks (a classic
/// off-by-one giving access to table[4..8]).
const SYS_FIXED: &str = "int max_fd = 4;\n\
int table[8];\n\
int sys_write(int fd, int v) {\n\
    if (fd >= max_fd) {\n\
        return 0 - 9;\n\
    }\n\
    table[fd] = v;\n\
    return v;\n\
}\n\
int sys_read(int fd) {\n\
    if (fd >= max_fd) {\n\
        return 0 - 9;\n\
    }\n\
    return table[fd];\n\
}\n";

#[test]
fn end_to_end_apply_and_undo() {
    let src = tree(&[("kernel/sys.kc", SYS)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    // The vulnerable behaviour: fd == 4 passes the check.
    assert_eq!(kernel.call_function("sys_write", &[4, 77]).unwrap(), 77);

    let patch = diff_for(&src, "kernel/sys.kc", SYS_FIXED);
    let (pack, _) =
        create_update("cve-off-by-one", &src, &patch, &CreateOptions::default()).unwrap();
    assert_eq!(pack.replaced_fn_count(), 2);

    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();

    // Fixed, live, no reboot.
    assert_eq!(
        kernel.call_function("sys_write", &[4, 88]).unwrap() as i64,
        -9
    );
    assert_eq!(kernel.call_function("sys_write", &[3, 55]).unwrap(), 55);
    assert_eq!(kernel.call_function("sys_read", &[3]).unwrap(), 55);

    // State survived: the value written before the update is still there.
    assert_eq!(kernel.call_function("sys_read", &[2]).unwrap(), 0);

    // ksplice-undo restores the vulnerable code.
    ks.undo(&mut kernel, "cve-off-by-one", &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("sys_write", &[4, 99]).unwrap(), 99);
}

#[test]
fn clean_apply_traces_the_pipeline_without_warnings() {
    let src = tree(&[("kernel/sys.kc", SYS)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();

    let ring = RingSink::new(512);
    let events = ring.handle();
    let mut tracer = Tracer::new().with_sink(Box::new(ring));

    let patch = diff_for(&src, "kernel/sys.kc", SYS_FIXED);
    let (pack, _) = create_update_traced(
        "cve-off-by-one",
        &src,
        &patch,
        &CreateOptions::default(),
        &mut tracer,
    )
    .unwrap();
    let report = Ksplice::new()
        .apply_traced(&mut kernel, &pack, &ApplyOptions::default(), &mut tracer)
        .unwrap();

    // Every stage of the pipeline left its marker...
    for name in [
        "create.start",
        "differ.unit",
        "create.packaged",
        "apply.start",
        "runpre.unit_start",
        "runpre.unit_matched",
        "apply.stop_machine",
        "apply.committed",
    ] {
        assert_eq!(events.named(name).len(), 1, "missing event {name}");
    }
    // ...and a clean apply leaks no Warn/Error events at all.
    assert!(
        events.at_least(Severity::Warn).is_empty(),
        "unexpected warnings: {:?}",
        events.at_least(Severity::Warn)
    );
    assert_eq!(report.attempts, 1);
    assert_eq!(report.sites, 2);
    assert!(report.stage_steps.iter().any(|(s, _)| *s == "stop_machine"));
    assert_eq!(tracer.counter("runpre.units_matched"), 1);
    assert_eq!(tracer.counter("apply.trampolines_written"), 2);
    assert!(tracer.counter("runpre.bytes_matched") > 0);
}

#[test]
fn state_is_preserved_across_update() {
    let src = tree(&[(
        "net/conn.kc",
        "int active;\n\
         int open_conn() {\n\
             active = active + 1;\n\
             return active;\n\
         }\n\
         int count_conns() {\n\
             return active;\n\
         }\n",
    )]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    for _ in 0..5 {
        kernel.call_function("open_conn", &[]).unwrap();
    }
    assert_eq!(kernel.call_function("count_conns", &[]).unwrap(), 5);

    // Patch open_conn to log; `active` must keep its live value — the
    // paper's "network connections and open applications are not lost".
    let patch = diff_for(
        &src,
        "net/conn.kc",
        "int active;\n\
         int open_conn() {\n\
             active = active + 1;\n\
             printk(\"conn opened\");\n\
             return active;\n\
         }\n\
         int count_conns() {\n\
             return active;\n\
         }\n",
    );
    let mut ks = Ksplice::new();
    apply_ok(&mut kernel, &mut ks, &src, "add-logging", &patch);
    assert_eq!(kernel.call_function("open_conn", &[]).unwrap(), 6);
    assert_eq!(kernel.klog.last().unwrap(), "conn opened");
}

#[test]
fn ambiguous_static_symbols_resolved_by_run_pre_matching() {
    // Two drivers each with a file-scope `static int debug` — the
    // CVE-2005-4639 situation (§6.3): a symbol-table lookup cannot tell
    // the two `debug`s apart, run-pre matching can.
    let dst = "static int debug;\n\
        int dst_tune(int v) {\n\
            debug = debug + v;\n\
            return debug;\n\
        }\n";
    let dst_ca = "static int debug;\n\
        int ca_get_slot_info(int slot) {\n\
            debug = debug + 1;\n\
            if (slot > 4) {\n\
                return 0 - 22;\n\
            }\n\
            return debug * 100 + slot;\n\
        }\n";
    let src = tree(&[("drivers/dst.kc", dst), ("drivers/dst_ca.kc", dst_ca)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    // Make the two debug counters diverge so a wrong resolution is
    // observable.
    kernel.call_function("dst_tune", &[50]).unwrap();
    assert_eq!(kernel.call_function("ca_get_slot_info", &[1]).unwrap(), 101);

    // Patch dst_ca.kc's function (which reads ITS OWN `debug`).
    let patch = diff_for(
        &src,
        "drivers/dst_ca.kc",
        "static int debug;\n\
        int ca_get_slot_info(int slot) {\n\
            debug = debug + 1;\n\
            if (slot > 4 || slot < 0) {\n\
                return 0 - 22;\n\
            }\n\
            return debug * 100 + slot;\n\
        }\n",
    );
    let mut ks = Ksplice::new();
    apply_ok(&mut kernel, &mut ks, &src, "cve-2005-4639", &patch);
    // The replacement code must use dst_ca's debug (value 1 → 2), not
    // dst.kc's (value 50).
    assert_eq!(kernel.call_function("ca_get_slot_info", &[2]).unwrap(), 202);
    assert_eq!(
        kernel
            .call_function("ca_get_slot_info", &[-1i64 as u64])
            .unwrap() as i64,
        -22
    );
    // dst.kc's counter is untouched.
    assert_eq!(kernel.call_function("dst_tune", &[0]).unwrap(), 50);
}

#[test]
fn wrong_source_aborts_via_run_pre_mismatch() {
    // Boot one kernel but hand ksplice-create a *different* "original"
    // source — §4.2's "original source code that does not actually
    // correspond to the running kernel".
    let real = tree(&[(
        "m.kc",
        "int f(int x) {\n    if (x > 2) {\n        return 7;\n    }\n    return x;\n}\n",
    )]);
    let wrong = tree(&[(
        "m.kc",
        "int f(int x) {\n    if (x > 3) {\n        return 9;\n    }\n    return x;\n}\n",
    )]);
    let mut kernel = Kernel::boot(&real, &Options::distro()).unwrap();
    let patch = diff_for(
        &wrong,
        "m.kc",
        "int f(int x) {\n    if (x >= 3) {\n        return 9;\n    }\n    return x;\n}\n",
    );
    let (pack, _) = create_update("bad", &wrong, &patch, &CreateOptions::default()).unwrap();
    let mut ks = Ksplice::new();
    let err = ks
        .apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, ApplyError::Match(MatchError::Mismatch { .. })),
        "{err}"
    );
    // Nothing was changed; the kernel still runs the original code.
    assert_eq!(kernel.call_function("f", &[5]).unwrap(), 7);
    assert!(ks.live_updates().count() == 0);

    // The same failure with a tracer attached: the mismatch event names
    // the unit and the exact divergent byte.
    let ring = RingSink::new(256);
    let events = ring.handle();
    let mut tracer = Tracer::new().with_sink(Box::new(ring));
    let err = ks
        .apply_traced(&mut kernel, &pack, &ApplyOptions::default(), &mut tracer)
        .unwrap_err();
    let (unit, function, pre_offset, expected, actual) = match &err {
        ApplyError::Match(MatchError::Mismatch {
            unit,
            function,
            pre_offset,
            bytes: Some((expected, actual)),
            ..
        }) => (
            unit.clone(),
            function.clone(),
            *pre_offset,
            *expected,
            *actual,
        ),
        other => panic!("expected a byte-level mismatch, got {other}"),
    };
    assert_eq!(unit, "m.kc");
    assert_eq!(function, "f");
    let mismatches = events.named("runpre.mismatch");
    assert_eq!(mismatches.len(), 1);
    let e = &mismatches[0];
    assert_eq!(e.severity, Severity::Error);
    assert_eq!(e.str_field("unit"), Some("m.kc"));
    assert_eq!(e.str_field("function"), Some("f"));
    assert_eq!(e.u64_field("pre_offset"), Some(pre_offset));
    assert_eq!(e.u64_field("expected_byte"), Some(expected as u64));
    assert_eq!(e.u64_field("actual_byte"), Some(actual as u64));
    assert_eq!(events.named("apply.abort").len(), 1);
    assert_eq!(tracer.counter("runpre.units_aborted"), 1);
}

#[test]
fn different_compiler_version_aborts() {
    // The running kernel was built by "compiler v2"; ksplice-create uses
    // v1. Codegen differs (register choice, alignment), so run-pre
    // matching must abort rather than patch blindly (§4.3).
    let src = tree(&[("m.kc", "int f(int a, int b) {\n    return a * 3 + b;\n}\n")]);
    let distro_v2 = Options {
        cc_version: 2,
        ..Options::distro()
    };
    let mut kernel = Kernel::boot(&src, &distro_v2).unwrap();
    let patch = diff_for(
        &src,
        "m.kc",
        "int f(int a, int b) {\n    return a * 4 + b;\n}\n",
    );
    let (pack, _) = create_update("v-mismatch", &src, &patch, &CreateOptions::default()).unwrap();
    let mut ks = Ksplice::new();
    let err = ks
        .apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap_err();
    assert!(matches!(err, ApplyError::Match(_)), "{err}");
}

#[test]
fn matches_despite_branch_form_and_alignment_differences() {
    // The run kernel (monolithic, -O2) uses rel8 branches and aligned
    // loop heads; the pre build (function-sections) uses rel32 and no
    // alignment. Run-pre matching must reconcile both (§4.3) — this is
    // the "none of the original binary kernels had -ffunction-sections
    // enabled, but run-pre matching always succeeded" property.
    let body = "int crunch(int n) {\n\
            int i;\n\
            int acc;\n\
            acc = 0;\n\
            for (i = 0; i < n; i = i + 1) {\n\
                if (i % 3 == 0) {\n\
                    acc = acc + i;\n\
                } else {\n\
                    acc = acc - 1;\n\
                }\n\
            }\n\
            while (acc > 100) {\n\
                acc = acc - 7;\n\
            }\n\
            return acc;\n\
        }\n\
        int wrapper(int n) {\n\
            return crunch(n) + 1;\n\
        }\n";
    let src = tree(&[("m.kc", body)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let want = kernel.call_function("crunch", &[50]).unwrap();

    // Sanity: the monolithic .text really does contain short branches and
    // alignment nops that the pre build lacks (otherwise this test proves
    // nothing).
    let distro_set = build_tree(&src, &Options::distro()).unwrap();
    let mono = distro_set.get("m.kc").unwrap();
    let (_, text) = mono.section_by_name(".text").unwrap();
    let has_rel8 = text.data.iter().any(|&b| (0x40..0x48).contains(&b));
    assert!(has_rel8 || text.data.windows(2).any(|w| w == [0x0e, 8]));

    let patched = body.replace("acc = acc - 7;", "acc = acc - 9;");
    let patch = diff_for(&src, "m.kc", &patched);
    let mut ks = Ksplice::new();
    apply_ok(&mut kernel, &mut ks, &src, "tweak", &patch);
    let got = kernel.call_function("crunch", &[50]).unwrap();
    assert_ne!(got, want);
    // wrapper (unchanged) now reaches the replacement through the
    // trampoline.
    assert_eq!(kernel.call_function("wrapper", &[50]).unwrap(), got + 1);
}

#[test]
fn non_quiescent_function_aborts_then_succeeds() {
    let src = tree(&[(
        "kernel/worker.kc",
        "int work_done;\n\
         int slow_worker(int rounds) {\n\
             int i;\n\
             for (i = 0; i < rounds; i = i + 1) {\n\
                 msleep(2);\n\
             }\n\
             work_done = work_done + 1;\n\
             return 0;\n\
         }\n",
    )]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    // Park a thread asleep *inside* slow_worker.
    let tid = kernel.spawn("slow_worker", &[1000]).unwrap();
    kernel.run(200);
    assert!(matches!(
        kernel.thread(tid).unwrap().state,
        ThreadState::Sleeping(_) | ThreadState::Runnable
    ));

    let patch = diff_for(
        &src,
        "kernel/worker.kc",
        "int work_done;\n\
         int slow_worker(int rounds) {\n\
             int i;\n\
             for (i = 0; i < rounds; i = i + 1) {\n\
                 msleep(3);\n\
             }\n\
             work_done = work_done + 2;\n\
             return 0;\n\
         }\n",
    );
    let (pack, _) = create_update("w", &src, &patch, &CreateOptions::default()).unwrap();
    let mut ks = Ksplice::new();
    // Short retries cannot outlast a 1000-round sleeper.
    let opts = ApplyOptions::with_retry(ksplice_core::RetryPolicy::fixed(3, 100));
    let err = ks.apply(&mut kernel, &pack, &opts).unwrap_err();
    assert!(
        matches!(err, ApplyError::NotQuiescent { .. }),
        "expected quiescence failure, got {err}"
    );

    // Let the worker finish; the retry loop now succeeds (§5.2).
    while !matches!(kernel.thread(tid).unwrap().state, ThreadState::Exited(_)) {
        kernel.run(1_000_000);
    }
    ks.apply(&mut kernel, &pack, &opts).unwrap();
}

#[test]
fn data_init_change_needs_custom_code_then_hook_fixes_live_instance() {
    // Table 1's dominant failure class: the patch changes how a datum is
    // initialised. Plain ksplice-create refuses; with programmer-written
    // custom code (a ksplice_apply hook that migrates the live instance)
    // the update applies and both old and new state are right.
    let base = "int rate_limit = 100;\n\
        int allow(int n) {\n\
            if (n > rate_limit) {\n\
                return 0;\n\
            }\n\
            return 1;\n\
        }\n";
    let src = tree(&[("net/rate.kc", base)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    assert_eq!(kernel.call_function("allow", &[150]).unwrap(), 0);

    // The plain security patch tightens the default limit.
    let plain = base.replace("int rate_limit = 100;", "int rate_limit = 10;");
    let patch = diff_for(&src, "net/rate.kc", &plain);
    let err = create_update("cve-rate", &src, &patch, &CreateOptions::default()).unwrap_err();
    assert!(matches!(err, CreateError::DataSemantics { .. }), "{err}");

    // The programmer's version: same change plus custom code run while
    // the machine is stopped (§5.3) that rewrites the live value.
    let custom = plain.clone()
        + "int fix_live_limit() {\n\
               rate_limit = 10;\n\
               return 0;\n\
           }\n\
           ksplice_apply(fix_live_limit);\n";
    let patch = diff_for(&src, "net/rate.kc", &custom);
    let opts = CreateOptions {
        accept_data_changes: true,
        ..CreateOptions::default()
    };
    let (pack, _) = create_update("cve-rate", &src, &patch, &opts).unwrap();
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();
    // The live instance was migrated by the hook.
    assert_eq!(kernel.call_function("allow", &[50]).unwrap(), 0);
    assert_eq!(kernel.call_function("allow", &[5]).unwrap(), 1);
}

#[test]
fn shadow_data_structures_extend_structs_without_layout_change() {
    // CVE-2005-2709's class: the fix wants a new per-object field. The
    // DynAMOS-style shadow approach (§5.3/§7.1) attaches side storage
    // keyed by the object's address instead of growing the struct.
    let base = "struct sock { int port; int state; };\n\
        struct sock socks[4];\n\
        int sock_open(int i, int port) {\n\
            socks[i].port = port;\n\
            socks[i].state = 1;\n\
            return 0;\n\
        }\n\
        int sock_send(int i, int n) {\n\
            if (socks[i].state != 1) {\n\
                return 0 - 1;\n\
            }\n\
            return n;\n\
        }\n";
    let src = tree(&[("net/sock.kc", base)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    kernel.call_function("sock_open", &[0, 80]).unwrap();
    kernel.call_function("sock_open", &[1, 443]).unwrap();

    // The fix: track a per-socket byte quota (new state!) via shadows.
    let patched = "struct sock { int port; int state; };\n\
        struct sock socks[4];\n\
        int sock_open(int i, int port) {\n\
            int *quota;\n\
            socks[i].port = port;\n\
            socks[i].state = 1;\n\
            quota = ksplice_shadow_attach(&socks[i], 7, 8);\n\
            *quota = 1000;\n\
            return 0;\n\
        }\n\
        int sock_send(int i, int n) {\n\
            int *quota;\n\
            if (socks[i].state != 1) {\n\
                return 0 - 1;\n\
            }\n\
            quota = ksplice_shadow_get(&socks[i], 7);\n\
            if (quota == 0) {\n\
                return 0 - 1;\n\
            }\n\
            if (n > *quota) {\n\
                return 0 - 1;\n\
            }\n\
            *quota = *quota - n;\n\
            return n;\n\
        }\n\
        int migrate_socks() {\n\
            int i;\n\
            int *quota;\n\
            for (i = 0; i < 4; i = i + 1) {\n\
                if (socks[i].state == 1) {\n\
                    quota = ksplice_shadow_attach(&socks[i], 7, 8);\n\
                    *quota = 1000;\n\
                }\n\
            }\n\
            return 0;\n\
        }\n\
        ksplice_apply(migrate_socks);\n";
    let patch = diff_for(&src, "net/sock.kc", patched);
    let (pack, _) = create_update("cve-shadow", &src, &patch, &CreateOptions::default()).unwrap();
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();

    // Pre-existing sockets were migrated and enforce the quota.
    assert_eq!(kernel.call_function("sock_send", &[0, 600]).unwrap(), 600);
    assert_eq!(
        kernel.call_function("sock_send", &[0, 600]).unwrap() as i64,
        -1
    );
    assert_eq!(kernel.call_function("sock_send", &[1, 100]).unwrap(), 100);
}

#[test]
fn stacked_updates_and_ordered_undo() {
    // §5.4: patching a previously-patched kernel. The second create uses
    // the previously-patched source; its run-pre matching must match the
    // first update's replacement code.
    let v0 = "int version() {\n    if (jiffies_now() < 0) {\n        return 0 - 1;\n    }\n    return 1;\n}\n";
    let v1 = v0.replace("return 1;", "return 2;");
    let v2 = v1.replace("return 2;", "return 3;");
    let src = tree(&[("m.kc", v0)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    assert_eq!(kernel.call_function("version", &[]).unwrap(), 1);

    let mut ks = Ksplice::new();
    let patch1 = diff_for(&src, "m.kc", &v1);
    let (pack1, patched_src) =
        create_update("up1", &src, &patch1, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack1, &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("version", &[]).unwrap(), 2);

    // Second update against the previously-patched source.
    let patch2 = diff_for(&patched_src, "m.kc", &v2);
    let (pack2, _) =
        create_update("up2", &patched_src, &patch2, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack2, &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("version", &[]).unwrap(), 3);

    // Undo must be LIFO: up1 cannot be reversed while up2 is live.
    let err = ks
        .undo(&mut kernel, "up1", &ApplyOptions::default())
        .unwrap_err();
    assert!(err.to_string().contains("most recent"), "{err}");
    ks.undo(&mut kernel, "up2", &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("version", &[]).unwrap(), 2);
    ks.undo(&mut kernel, "up1", &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("version", &[]).unwrap(), 1);
}

#[test]
fn helper_modules_are_unloaded_after_apply() {
    let src = tree(&[(
        "m.kc",
        "int f(int x) {\n    if (x > 1) {\n        return 1;\n    }\n    return 2;\n}\n",
    )]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let patch = diff_for(
        &src,
        "m.kc",
        "int f(int x) {\n    if (x > 1) {\n        return 5;\n    }\n    return 2;\n}\n",
    );
    let mut ks = Ksplice::new();
    apply_ok(&mut kernel, &mut ks, &src, "u", &patch);
    // No helper module regions or entries remain; one primary remains.
    assert!(!kernel.modules.iter().any(|m| m.name.contains("helper")));
    assert_eq!(
        kernel
            .modules
            .iter()
            .filter(|m| m.name.contains("primary"))
            .count(),
        1
    );
    assert!(!kernel
        .mem
        .regions()
        .iter()
        .any(|r| r.name.contains("helper")));
}

#[test]
fn interrupted_threads_resume_through_trampolines() {
    // A thread busy in a loop *outside* the patched function keeps
    // running across the update and picks up the new behaviour on its
    // next call — the "0.7 ms interruption, no state loss" story.
    let src = tree(&[(
        "m.kc",
        // `step` contains a loop so the optimiser cannot inline it into
        // `driver` — otherwise the diff would (correctly!) flag `driver`
        // too and the busy thread would block the update.
        "int total;\n\
         int step(int i) {\n\
             int k;\n\
             int acc;\n\
             acc = 0;\n\
             for (k = 0; k < i; k = k + 1) {\n\
                 acc = acc + 1;\n\
             }\n\
             return acc;\n\
         }\n\
         int driver(int rounds) {\n\
             int i;\n\
             for (i = 0; i < rounds; i = i + 1) {\n\
                 total = total + step(1);\n\
                 yield_cpu();\n\
             }\n\
             return total;\n\
         }\n\
         int get_total() {\n\
             return total;\n\
         }\n",
    )]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let tid = kernel.spawn("driver", &[400]).unwrap();
    kernel.run(2_000); // partially done

    let patch = diff_for(
        &src,
        "m.kc",
        &src.get("m.kc")
            .unwrap()
            .replace("return acc;", "return acc * 10;"),
    );
    let (pack, _) = create_update("boost", &src, &patch, &CreateOptions::default()).unwrap();
    let mut ks = Ksplice::new();
    // The driver sits in `driver`, not `step`; only `step` is replaced, so
    // the safety check passes while the thread is mid-loop.
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();

    while !matches!(kernel.thread(tid).unwrap().state, ThreadState::Exited(_)) {
        kernel.run(1_000_000);
    }
    let total = kernel.call_function("get_total", &[]).unwrap();
    // Some rounds at 1, the rest at 10 — strictly between the extremes.
    assert!(total > 400 && total < 4000, "total = {total}");
    assert_eq!(kernel.stop_machine_count, 1);
    assert!(kernel.last_stop_machine.is_some());
}

#[test]
fn patch_to_assembly_unit() {
    // §6.3's closing example: a patch to a pure assembly file
    // (CVE-2007-4573's ia32entry.S) flows through the same machinery.
    let entry = ".global bounds_check\nbounds_check:\ncmpi r1, 255\njg .Lbad\nmov r0, r1\nret\n.Lbad:\nmov r0, -14\nret\n";
    let src = tree(&[("arch/entry.ks", entry)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    // The bug: negative values pass the check (no zero-extension).
    assert_eq!(
        kernel
            .call_function("bounds_check", &[-5i64 as u64])
            .unwrap() as i64,
        -5
    );
    let fixed = entry.replace(
        "cmpi r1, 255\njg .Lbad\n",
        "cmpi r1, 255\njg .Lbad\ncmpi r1, 0\njl .Lbad\n",
    );
    let patch = diff_for(&src, "arch/entry.ks", &fixed);
    let (pack, _) =
        create_update("cve-2007-4573", &src, &patch, &CreateOptions::default()).unwrap();
    let mut ks = Ksplice::new();
    ks.apply(&mut kernel, &pack, &ApplyOptions::default())
        .unwrap();
    assert_eq!(
        kernel
            .call_function("bounds_check", &[-5i64 as u64])
            .unwrap() as i64,
        -14
    );
    assert_eq!(kernel.call_function("bounds_check", &[7]).unwrap(), 7);
}

#[test]
fn match_unit_directly_reports_bindings() {
    // White-box check of the §4.3 machinery: bindings recovered from run
    // relocations hit the true addresses.
    let src = tree(&[(
        "m.kc",
        "int shared_counter;\n\
         int touch(int v) {\n\
             shared_counter = shared_counter + v;\n\
             return shared_counter;\n\
         }\n",
    )]);
    let kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let pre = build_tree(&src, &Options::pre_post()).unwrap();
    let m = match_unit(&kernel, pre.get("m.kc").unwrap(), &BTreeMap::new()).unwrap();
    let touch = m.fn_addrs.get("touch").unwrap();
    let ksym = kernel.syms.lookup_global("touch").unwrap();
    assert_eq!(touch.run_addr, ksym.addr);
    let counter_binding = m.bindings.get("shared_counter").copied().unwrap();
    let counter_sym = kernel.syms.lookup_global("shared_counter").unwrap();
    assert_eq!(counter_binding, counter_sym.addr);
}
