//! Property tests on run-pre matching: for arbitrary generated kernels,
//! the pre build always matches the freshly-booted run kernel, and
//! tampering with the run text never panics the matcher.

// Gated: the proptest dependency only resolves with registry access.
// Re-add `proptest` to [dev-dependencies] and build with
// `--features proptest-tests` to run this suite.
#![cfg(feature = "proptest-tests")]

use std::collections::BTreeMap;

use ksplice_core::match_unit;
use ksplice_kernel::Kernel;
use ksplice_lang::{build_tree, Options, SourceTree};
use proptest::prelude::*;

/// Generates a small random-but-valid kc unit: arithmetic functions with
/// loops, branches, shared state and cross-references.
fn arb_unit() -> impl Strategy<Value = String> {
    (
        1usize..4,
        proptest::collection::vec((0u8..5, -20i64..20, 1i64..8), 1..4),
    )
        .prop_map(|(nfns, shapes)| {
            let mut src = String::from("int shared_counter;\n");
            for i in 0..nfns {
                let (kind, imm, reps) = shapes[i % shapes.len()];
                src.push_str(&format!("int fn{i}(int a, int b) {{\n"));
                src.push_str("    int i;\n    int acc;\n    acc = a;\n");
                match kind {
                    0 => src.push_str(&format!(
                        "    for (i = 0; i < {reps}; i = i + 1) {{ acc = acc + b + {imm}; }}\n"
                    )),
                    1 => src.push_str(&format!(
                        "    if (a > b) {{ acc = acc * 2; }} else {{ acc = acc - {imm}; }}\n"
                    )),
                    2 => src.push_str(
                        "    shared_counter = shared_counter + 1;\n    acc = acc + shared_counter;\n",
                    ),
                    3 if i > 0 => src.push_str(&format!("    acc = acc + fn{}(b, a);\n", i - 1)),
                    _ => src.push_str(&format!("    acc = (acc ^ {imm}) & 0xffff;\n")),
                }
                src.push_str("    return acc;\n}\n");
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identity: the pre build of the same source always matches the
    /// booted kernel, for every function, at the kallsyms addresses.
    #[test]
    fn same_source_always_matches(src in arb_unit()) {
        let mut tree = SourceTree::new();
        tree.insert("gen.kc", &src);
        let kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
        let pre = build_tree(&tree, &Options::pre_post()).unwrap();
        let m = match_unit(&kernel, pre.get("gen.kc").unwrap(), &BTreeMap::new()).unwrap();
        prop_assert!(!m.fn_addrs.is_empty());
        for (name, fm) in &m.fn_addrs {
            let k = kernel.syms.lookup_global(name).unwrap();
            prop_assert_eq!(fm.run_addr, k.addr);
        }
    }

    /// Tamper totality: flipping a bit anywhere in a run function never
    /// panics the matcher — it either aborts (the §4.2 guarantee for code
    /// bytes) or, when the flip landed inside a relocation field, yields
    /// a different recovered binding.
    #[test]
    fn tampering_never_panics(src in arb_unit(), which in any::<proptest::sample::Index>()) {
        let mut tree = SourceTree::new();
        tree.insert("gen.kc", &src);
        let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
        let pre = build_tree(&tree, &Options::pre_post()).unwrap();
        let unit = pre.get("gen.kc").unwrap();
        let sym = kernel.syms.lookup_global("fn0").unwrap();
        let (addr, size) = (sym.addr, sym.size.max(8));
        let off = which.index(size as usize) as u64;
        let b = kernel.mem.peek(addr + off, 1).unwrap()[0];
        kernel.mem.poke(addr + off, &[b ^ 0x80]).unwrap();
        let _ = match_unit(&kernel, unit, &BTreeMap::new());
    }
}
