//! The update lifecycle manager: pre-flight gate, quarantine watch
//! window with automatic rollback, and non-LIFO undo with trampoline
//! re-pointing.

use ksplice_core::trace::{RingSink, Tracer};
use ksplice_core::{
    create_update, ApplyOptions, CreateOptions, HealthProbe, Ksplice, LifecycleError,
    PreflightError, UndoError, UpdateManager, UpdateState, WatchPolicy,
};
use ksplice_kernel::{Fault, Kernel};
use ksplice_lang::{Options, SourceTree};
use ksplice_patch::make_diff;

fn tree(files: &[(&str, &str)]) -> SourceTree {
    files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

fn diff_for(src: &SourceTree, path: &str, new_content: &str) -> String {
    make_diff(path, src.get(path).expect("file exists"), new_content).expect("contents differ")
}

const SYS: &str = "int max_fd = 4;\n\
int table[8];\n\
int sys_write(int fd, int v) {\n\
    if (fd > max_fd) {\n\
        return 0 - 9;\n\
    }\n\
    table[fd] = v;\n\
    return v;\n\
}\n";

const SYS_FIXED: &str = "int max_fd = 4;\n\
int table[8];\n\
int sys_write(int fd, int v) {\n\
    if (fd >= max_fd) {\n\
        return 0 - 9;\n\
    }\n\
    table[fd] = v;\n\
    return v;\n\
}\n";

#[test]
fn probe_spec_parsing() {
    let p = HealthProbe::parse("sys_write(4, 88)=-9").unwrap();
    match p {
        HealthProbe::Canary {
            name,
            fn_name,
            args,
            expected,
        } => {
            assert_eq!(name, "canary:sys_write");
            assert_eq!(fn_name, "sys_write");
            assert_eq!(args, vec![4, 88]);
            assert_eq!(expected as i64, -9);
        }
        other => panic!("unexpected probe {other:?}"),
    }
    match HealthProbe::parse("version()=3").unwrap() {
        HealthProbe::Canary { args, expected, .. } => {
            assert!(args.is_empty());
            assert_eq!(expected, 3);
        }
        other => panic!("unexpected probe {other:?}"),
    }
    assert!(HealthProbe::parse("no_equals").is_err());
    assert!(HealthProbe::parse("f(1=2").is_err());
    assert!(HealthProbe::parse("f(x)=2").is_err());
    assert!(HealthProbe::parse("=2").is_err());
}

#[test]
fn watch_window_commits_a_healthy_update() {
    let src = tree(&[("kernel/sys.kc", SYS)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let patch = diff_for(&src, "kernel/sys.kc", SYS_FIXED);
    let (pack, _) = create_update("fix", &src, &patch, &CreateOptions::default()).unwrap();

    let mut mgr = UpdateManager::new();
    let mut probes = vec![
        HealthProbe::canary("sys_write", &[3, 55], 55),
        // The patched behaviour itself: fd == 4 must now be rejected.
        HealthProbe::canary("sys_write", &[4, 88], (-9i64) as u64),
        HealthProbe::Custom {
            name: "klog-scan".to_string(),
            check: Box::new(|_k: &mut Kernel| Ok(())),
        },
    ];
    mgr.apply_watched(
        &mut kernel,
        &pack,
        &mut probes,
        &ApplyOptions::default(),
        &mut Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(mgr.state("fix"), Some(UpdateState::Committed));
    assert!(mgr.render_status().contains("committed"));
    assert_eq!(
        kernel.call_function("sys_write", &[4, 88]).unwrap() as i64,
        -9
    );
}

#[test]
fn failing_probe_triggers_checksum_verified_rollback() {
    let src = tree(&[("kernel/sys.kc", SYS)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let patch = diff_for(&src, "kernel/sys.kc", SYS_FIXED);
    let (pack, _) = create_update("fix", &src, &patch, &CreateOptions::default()).unwrap();
    let text_before = kernel.mem.text_checksum();

    let ring = RingSink::new(512);
    let events = ring.handle();
    let mut tracer = Tracer::new().with_sink(Box::new(ring));

    let mut mgr = UpdateManager::new();
    // A canary that demands the *vulnerable* answer: the patched kernel
    // returns -9, so the probe fails and quarantine must roll back.
    let mut probes = vec![HealthProbe::canary("sys_write", &[4, 88], 88)];
    let err = mgr
        .apply_watched(
            &mut kernel,
            &pack,
            &mut probes,
            &ApplyOptions::default(),
            &mut tracer,
        )
        .unwrap_err();
    match &err {
        LifecycleError::Quarantine {
            id, probe, round, ..
        } => {
            assert_eq!(id, "fix");
            assert_eq!(probe, "canary:sys_write");
            assert_eq!(*round, 1);
        }
        other => panic!("expected Quarantine, got {other}"),
    }
    assert_eq!(mgr.state("fix"), Some(UpdateState::RolledBack));
    assert!(mgr.render_status().contains("rolled-back"));
    // The automatic rollback restored the exact pre-apply text image and
    // the vulnerable behaviour.
    assert_eq!(kernel.mem.text_checksum(), text_before);
    assert_eq!(kernel.call_function("sys_write", &[4, 99]).unwrap(), 99);

    let events = events.events();
    for needle in [
        "watch.start",
        "watch.probe_failed",
        "watch.auto_rollback",
        "watch.rollback_verified",
    ] {
        assert!(
            events.iter().any(|e| e.name == needle),
            "missing event {needle}"
        );
    }
    assert!(!events.iter().any(|e| e.name == "watch.committed"));
}

#[test]
fn injected_probe_fault_forces_rollback() {
    let src = tree(&[("kernel/sys.kc", SYS)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let patch = diff_for(&src, "kernel/sys.kc", SYS_FIXED);
    let (pack, _) = create_update("fix", &src, &patch, &CreateOptions::default()).unwrap();
    kernel.arm_fault(Fault::ProbeFail { count: 1 }).unwrap();

    let mut mgr = UpdateManager::with_watch(WatchPolicy {
        rounds: 2,
        steps_per_round: 500,
    });
    // The probe itself would pass; the armed fault fails it.
    let mut probes = vec![HealthProbe::canary("sys_write", &[3, 55], 55)];
    let err = mgr
        .apply_watched(
            &mut kernel,
            &pack,
            &mut probes,
            &ApplyOptions::default(),
            &mut Tracer::disabled(),
        )
        .unwrap_err();
    match &err {
        LifecycleError::Quarantine { reason, .. } => {
            assert!(reason.contains("injected"), "{reason}");
        }
        other => panic!("expected Quarantine, got {other}"),
    }
    assert!(kernel
        .faults
        .fired()
        .iter()
        .any(|f| f.site == "probe-fail"));
    assert_eq!(kernel.call_function("sys_write", &[4, 99]).unwrap(), 99);
}

#[test]
fn preflight_rejects_conflicting_and_malformed_packs() {
    let src = tree(&[
        ("a.kc", "int f(int x) {\n    return x + 1;\n}\n"),
        ("b.kc", "int g(int x) {\n    return x + 2;\n}\n"),
    ]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let patch_a = diff_for(&src, "a.kc", "int f(int x) {\n    return x + 10;\n}\n");
    let (pack_a, _) = create_update("up-a", &src, &patch_a, &CreateOptions::default()).unwrap();

    let mut mgr = UpdateManager::new();
    mgr.apply_watched(
        &mut kernel,
        &pack_a,
        &mut [],
        &ApplyOptions::default(),
        &mut Tracer::disabled(),
    )
    .unwrap();

    // A second pack patching the same function through a *different*
    // unit is a conflict the gate must refuse before any module loads.
    let modules_before = kernel.modules.len();
    let mut pack_b = pack_a.clone();
    pack_b.id = "up-b".to_string();
    pack_b.units[0].unit = "other.kc".to_string();
    let err = mgr
        .apply_watched(
            &mut kernel,
            &pack_b,
            &mut [],
            &ApplyOptions::default(),
            &mut Tracer::disabled(),
        )
        .unwrap_err();
    match err {
        LifecycleError::Preflight(PreflightError::Conflict {
            fn_name,
            live_update,
            ..
        }) => {
            assert_eq!(fn_name, "f");
            assert_eq!(live_update, "up-a");
        }
        other => panic!("expected Conflict, got {other}"),
    }
    assert_eq!(kernel.modules.len(), modules_before, "kernel was touched");

    // Malformed shapes.
    let mut empty_id = pack_a.clone();
    empty_id.id = String::new();
    assert!(matches!(
        ksplice_core::preflight(
            mgr.ksplice(),
            &kernel,
            &empty_id,
            &mut Tracer::disabled()
        ),
        Err(PreflightError::BadPack { .. })
    ));
    let mut no_units = pack_a.clone();
    no_units.id = "nu".to_string();
    no_units.units.clear();
    assert!(matches!(
        ksplice_core::preflight(mgr.ksplice(), &kernel, &no_units, &mut Tracer::disabled()),
        Err(PreflightError::BadPack { .. })
    ));
    let mut dup_units = pack_a.clone();
    dup_units.id = "du".to_string();
    let clone = dup_units.units[0].clone();
    dup_units.units.push(clone);
    assert!(matches!(
        ksplice_core::preflight(mgr.ksplice(), &kernel, &dup_units, &mut Tracer::disabled()),
        Err(PreflightError::BadPack { .. })
    ));

    // A reloc target nothing can resolve. Fresh manager so the conflict
    // check cannot fire first.
    let mut bad_reloc = pack_a.clone();
    bad_reloc.id = "br".to_string();
    bad_reloc.units[0]
        .primary
        .symbols
        .push(ksplice_object::Symbol::undefined("no_such_symbol_xyz"));
    let sym_idx = bad_reloc.units[0].primary.symbols.len() - 1;
    if let Some(sec) = bad_reloc.units[0].primary.sections.first_mut() {
        sec.relocs.push(ksplice_object::Reloc {
            offset: 0,
            kind: ksplice_object::RelocKind::Abs64,
            symbol: sym_idx,
            addend: 0,
        });
    }
    let fresh = UpdateManager::new();
    assert!(matches!(
        ksplice_core::preflight(fresh.ksplice(), &kernel, &bad_reloc, &mut Tracer::disabled()),
        Err(PreflightError::UnknownRelocTarget { ref symbol, .. }) if symbol == "no_such_symbol_xyz"
    ));
}

/// §5.4 chain v0 → v1 → v2 on one function; reversing the *older* update
/// while the newer is live must re-point instead of refusing, and a full
/// unwind must restore the original text image.
#[test]
fn non_lifo_undo_repoints_the_chain() {
    let v0 = "int version() {\n    if (jiffies_now() < 0) {\n        return 0 - 1;\n    }\n    return 1;\n}\n";
    let v1 = v0.replace("return 1;", "return 2;");
    let v2 = v1.replace("return 2;", "return 3;");
    let src = tree(&[("m.kc", v0)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let text_baseline = kernel.mem.text_checksum();

    let mut ks = Ksplice::new();
    let patch1 = diff_for(&src, "m.kc", &v1);
    let (pack1, patched) = create_update("up1", &src, &patch1, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack1, &ApplyOptions::default())
        .unwrap();
    let patch2 = diff_for(&patched, "m.kc", &v2);
    let (pack2, _) = create_update("up2", &patched, &patch2, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack2, &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("version", &[]).unwrap(), 3);

    // Plain undo still refuses (LIFO contract unchanged)…
    let err = ks
        .undo(&mut kernel, "up1", &ApplyOptions::default())
        .unwrap_err();
    assert!(err.to_string().contains("most recent"), "{err}");

    // …but undo_any re-points up2's chain onto the original site.
    let ring = RingSink::new(256);
    let events = ring.handle();
    let mut tracer = Tracer::new().with_sink(Box::new(ring));
    let report = ks
        .undo_any_traced(&mut kernel, "up1", &ApplyOptions::default(), &mut tracer)
        .unwrap();
    assert_eq!(report.id, "up1");
    assert_eq!(report.sites_restored, 1);
    assert!(events.events().iter().any(|e| e.name == "undo.repointed"));

    // up1's module is gone; behaviour is still v2 through one hop.
    assert_eq!(kernel.call_function("version", &[]).unwrap(), 3);
    assert!(!kernel.modules.iter().any(|m| m.name.contains("up1")));

    // Reversing the survivor restores the original kernel text exactly.
    ks.undo_any(&mut kernel, "up2", &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("version", &[]).unwrap(), 1);
    assert_eq!(kernel.mem.text_checksum(), text_baseline);
}

/// Disjoint updates (different functions) reversed in arbitrary order.
#[test]
fn non_lifo_undo_of_disjoint_updates_restores_text() {
    let src = tree(&[
        ("a.kc", "int f(int x) {\n    return x + 1;\n}\n"),
        ("b.kc", "int g(int x) {\n    return x + 2;\n}\n"),
        ("c.kc", "int h(int x) {\n    return x + 3;\n}\n"),
    ]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let text_baseline = kernel.mem.text_checksum();

    let mut ks = Ksplice::new();
    for (id, path, newc) in [
        ("ua", "a.kc", "int f(int x) {\n    return x + 10;\n}\n"),
        ("ub", "b.kc", "int g(int x) {\n    return x + 20;\n}\n"),
        ("uc", "c.kc", "int h(int x) {\n    return x + 30;\n}\n"),
    ] {
        let patch = diff_for(&src, path, newc);
        let (pack, _) = create_update(id, &src, &patch, &CreateOptions::default()).unwrap();
        ks.apply(&mut kernel, &pack, &ApplyOptions::default())
            .unwrap();
    }
    assert_eq!(kernel.call_function("f", &[1]).unwrap(), 11);

    // Middle first, then oldest, then newest.
    for id in ["ub", "ua", "uc"] {
        ks.undo_any(&mut kernel, id, &ApplyOptions::default())
            .unwrap();
    }
    assert_eq!(kernel.call_function("f", &[1]).unwrap(), 2);
    assert_eq!(kernel.call_function("g", &[1]).unwrap(), 3);
    assert_eq!(kernel.call_function("h", &[1]).unwrap(), 4);
    assert_eq!(kernel.mem.text_checksum(), text_baseline);
}

/// A later update that *calls into* code existing only in an older
/// update's module (a function that update introduced) entangles the
/// pair: the older reversal must be refused, naming the tying symbol.
#[test]
fn entangled_reversal_is_refused_with_the_tying_function() {
    // `audit` is deliberately loop-heavy so the optimiser cannot inline
    // it — the call must survive as a real cross-section reference.
    let audit = "int audit(int x) {\n    int i;\n    int s;\n    s = x;\n    \
for (i = 0; i < 3; i = i + 1) {\n        s = s + i;\n    }\n    return s;\n}\n";
    let v0 = "int policy(int x) {\n    return x + 1;\n}\n";
    // up1 introduces `audit` — it exists only in up1's primary module —
    // and makes `policy` call it.
    let v1 = format!("{audit}int policy(int x) {{\n    return audit(x) + 1;\n}}\n");
    // up2 (against v1) rewrites only `policy`; its replacement code still
    // calls `audit`, so its bindings resolve into up1's module.
    let v2 = format!("{audit}int policy(int x) {{\n    return audit(x) + 2;\n}}\n");
    let src = tree(&[("p.kc", v0)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    assert_eq!(kernel.call_function("policy", &[3]).unwrap(), 4);

    let mut ks = Ksplice::new();
    let patch1 = diff_for(&src, "p.kc", &v1);
    let (pack1, patched) = create_update("up1", &src, &patch1, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack1, &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("policy", &[3]).unwrap(), 7);

    let patch2 = diff_for(&patched, "p.kc", &v2);
    let (pack2, _) = create_update("up2", &patched, &patch2, &CreateOptions::default()).unwrap();
    ks.apply(&mut kernel, &pack2, &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("policy", &[3]).unwrap(), 8);

    let err = ks
        .undo_any(&mut kernel, "up1", &ApplyOptions::default())
        .unwrap_err();
    match &err {
        UndoError::Entangled {
            id,
            dependent,
            functions,
        } => {
            assert_eq!(id, "up1");
            assert_eq!(dependent, "up2");
            assert!(functions.iter().any(|f| f.contains("audit")), "{functions:?}");
        }
        other => panic!("expected Entangled, got {other}"),
    }
    // Nothing was disturbed; LIFO order still unwinds cleanly.
    assert_eq!(kernel.call_function("policy", &[3]).unwrap(), 8);
    ks.undo_any(&mut kernel, "up2", &ApplyOptions::default())
        .unwrap();
    ks.undo_any(&mut kernel, "up1", &ApplyOptions::default())
        .unwrap();
    assert_eq!(kernel.call_function("policy", &[3]).unwrap(), 4);
}

/// The manager's undo path records the Reversed lifecycle state.
#[test]
fn manager_undo_any_updates_status() {
    let src = tree(&[("kernel/sys.kc", SYS)]);
    let mut kernel = Kernel::boot(&src, &Options::distro()).unwrap();
    let patch = diff_for(&src, "kernel/sys.kc", SYS_FIXED);
    let (pack, _) = create_update("fix", &src, &patch, &CreateOptions::default()).unwrap();

    let mut mgr = UpdateManager::new();
    mgr.apply_watched(
        &mut kernel,
        &pack,
        &mut [],
        &ApplyOptions::default(),
        &mut Tracer::disabled(),
    )
    .unwrap();
    let report = mgr
        .undo_any(
            &mut kernel,
            "fix",
            &ApplyOptions::default(),
            &mut Tracer::disabled(),
        )
        .unwrap();
    assert!(report.render().contains("site(s) restored"));
    assert_eq!(mgr.state("fix"), Some(UpdateState::Reversed));
    assert!(mgr.render_status().contains("reversed"));
}
