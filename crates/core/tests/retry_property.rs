//! Property: abandoning an update after retries restores the *exact*
//! pre-apply memory image, under random fault schedules and random
//! retry policies.
//!
//! Each iteration boots a fresh kernel, snapshots a checksum of every
//! mapped byte, arms a randomly drawn fault schedule that guarantees
//! abandonment, runs the apply, and requires (a) the documented error,
//! (b) a byte-identical image, and (c) the per-attempt backoff trail on
//! the tracer. Randomness comes from the repo's hand-rolled seeded
//! xorshift64* generator, so every failure replays from its seed.

use ksplice_core::trace::{RingSink, Tracer};
use ksplice_core::{
    create_update, ApplyError, ApplyOptions, CreateOptions, Ksplice, RetryPolicy,
};
use ksplice_kernel::{Fault, Kernel};
use ksplice_lang::{Options, SourceTree};
use ksplice_patch::make_diff;

/// xorshift64* — tiny deterministic PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const SRC: &str = "int counter = 0;\n\
int bump(int by) {\n\
    counter = counter + by;\n\
    return counter;\n\
}\n\
int peek() {\n\
    return counter;\n\
}\n";

/// The shared fixture: source tree, prebuilt boot image (compiled once —
/// every seed boots from the same objects) and update pack.
fn fixture() -> (SourceTree, ksplice_object::ObjectSet) {
    let mut tree = SourceTree::new();
    tree.insert("kernel/ctr.kc", SRC);
    let image = ksplice_lang::build_tree(&tree, &Options::distro()).unwrap();
    (tree, image)
}

fn make_pack(tree: &SourceTree) -> ksplice_core::UpdatePack {
    let patched = SRC.replace("counter + by", "counter + by + by");
    let patch = make_diff("kernel/ctr.kc", SRC, &patched).unwrap();
    let (pack, _) = create_update("prop", tree, &patch, &CreateOptions::default()).unwrap();
    pack
}

/// Draws a random retry policy: shape, attempts, delays, jitter,
/// cooldown all vary with the seed.
fn random_policy(rng: &mut Rng) -> RetryPolicy {
    let attempts = 2 + rng.below(4) as u32;
    let delay = 50 + rng.below(2_000);
    let policy = if rng.below(2) == 0 {
        RetryPolicy::fixed(attempts, delay)
    } else {
        RetryPolicy::exponential(attempts, delay, delay * (1 + rng.below(8)))
    };
    let policy = match rng.below(3) {
        0 => policy,
        1 => policy.with_jitter(10, rng.next()),
        _ => policy.with_jitter(25, rng.next()),
    };
    match rng.below(2) {
        0 => policy,
        _ => policy.with_cooldown(500 + rng.below(2_000)),
    }
}

#[test]
fn jitter_is_deterministic_per_seed_and_bounded_by_the_cap() {
    let mut rng = Rng::new(0xf422);
    for round in 0..500u64 {
        let attempts = 1 + rng.below(16) as u32;
        let delay = 1 + rng.below(50_000);
        let cap = 1 + rng.below(200_000);
        let pct = rng.below(101) as u32;
        let seed = rng.next();
        let base_policy = if rng.below(2) == 0 {
            RetryPolicy::fixed(attempts, delay)
        } else {
            RetryPolicy::exponential(attempts, delay, cap)
        };
        let policy = base_policy.clone().with_jitter(pct, seed);
        let replay = base_policy.clone().with_jitter(pct, seed);

        for attempt in 1..=attempts {
            let base = base_policy.delay_steps(attempt);
            let d = policy.delay_steps(attempt);

            // Deterministic: the same (policy, attempt) always yields the
            // same delay — recomputed on the same value and on an
            // independently constructed identical policy.
            assert_eq!(d, policy.delay_steps(attempt), "round {round}");
            assert_eq!(d, replay.delay_steps(attempt), "round {round}");

            // Bounded: jitter moves the delay by at most pct% of the
            // (already capped) base, never below one step.
            let span = base / 100 * pct as u64 + base % 100 * pct as u64 / 100;
            assert!(
                d >= base.saturating_sub(span).max(1.min(base)) && d <= base + span,
                "round {round} attempt {attempt}: base {base} span {span} got {d}"
            );
            assert!(
                d <= policy.max_delay_steps + span,
                "round {round} attempt {attempt}: jitter escaped the cap"
            );
        }

        // A different seed must eventually produce a different schedule
        // (when jitter is actually in play).
        if pct >= 10 && delay >= 1_000 && attempts >= 4 {
            let other = base_policy.clone().with_jitter(pct, seed ^ 0xdead_beef);
            let a: Vec<u64> = (1..=attempts).map(|n| policy.delay_steps(n)).collect();
            let b: Vec<u64> = (1..=attempts).map(|n| other.delay_steps(n)).collect();
            assert_ne!(a, b, "round {round}: distinct seeds gave identical jitter");
        }
    }
}

#[test]
fn abandon_after_retries_restores_the_exact_memory_image() {
    let (tree, image) = fixture();
    let pack = make_pack(&tree);
    for seed in 1..=25u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut kernel = Kernel::boot_image(&image).unwrap();
        let policy = random_policy(&mut rng);

        // Arm more busy windows than the policy has attempts, so every
        // stack check fails and the apply must abandon.
        let windows = policy.max_attempts + rng.below(3) as u32;
        kernel.faults.reseed(seed);
        kernel
            .arm_fault(Fault::StackBusy { windows })
            .unwrap();
        if rng.below(2) == 0 {
            kernel
                .arm_fault(Fault::StepJitter {
                    max_steps: 1 + rng.below(200),
                })
                .unwrap();
        }

        let before = kernel.mem.image_checksum();
        let ring = RingSink::new(256);
        let events = ring.handle();
        let mut tracer = Tracer::new().with_sink(Box::new(ring));
        let err = Ksplice::new()
            .apply_traced(
                &mut kernel,
                &pack,
                &ApplyOptions::with_retry(policy.clone()),
                &mut tracer,
            )
            .unwrap_err();

        match err {
            ApplyError::NotQuiescent { attempts, .. } => {
                assert_eq!(attempts, policy.max_attempts, "seed {seed}")
            }
            other => panic!("seed {seed}: expected NotQuiescent, got {other}"),
        }
        assert_eq!(
            kernel.mem.image_checksum(),
            before,
            "seed {seed}: abandon left the memory image changed"
        );

        // The abandon is checksum-verified on the trace...
        let verified = events.named("apply.rollback_verified");
        assert_eq!(verified.len(), 1, "seed {seed}");
        assert_eq!(
            verified[0].field("restored").and_then(|v| v.as_bool()),
            Some(true),
            "seed {seed}"
        );
        // ...and every inter-attempt delay followed the policy exactly.
        let delays = events.named("apply.retry_delay");
        assert_eq!(delays.len(), policy.max_attempts as usize - 1, "seed {seed}");
        for (i, e) in delays.iter().enumerate() {
            let attempt = i as u32 + 1;
            assert_eq!(e.u64_field("attempt"), Some(attempt as u64), "seed {seed}");
            assert_eq!(
                e.u64_field("steps"),
                Some(policy.delay_steps(attempt)),
                "seed {seed} attempt {attempt}"
            );
        }
        if policy.cooldown_steps > 0 {
            assert_eq!(events.named("apply.cooldown").len(), 1, "seed {seed}");
        }
        assert_eq!(events.named("apply.abort").len(), 1, "seed {seed}");

        // The kernel still works and the update never took effect.
        assert_eq!(kernel.call_function("bump", &[3]).unwrap(), 3, "seed {seed}");
    }
}

#[test]
fn module_load_failures_abort_with_the_image_intact() {
    let (tree, image) = fixture();
    let pack = make_pack(&tree);
    for seed in 100..=115u64 {
        let mut kernel = Kernel::boot_image(&image).unwrap();
        kernel.faults.reseed(seed);
        kernel.arm_fault(Fault::ModuleLoad { count: 1 }).unwrap();

        let before = kernel.mem.image_checksum();
        let err = Ksplice::new()
            .apply(&mut kernel, &pack, &ApplyOptions::default())
            .unwrap_err();
        assert!(matches!(err, ApplyError::Link(_)), "seed {seed}: {err}");
        assert_eq!(
            kernel.mem.image_checksum(),
            before,
            "seed {seed}: failed load left the memory image changed"
        );
        assert_eq!(kernel.call_function("bump", &[2]).unwrap(), 2, "seed {seed}");
    }
}

#[test]
fn undo_abandon_restores_the_exact_memory_image() {
    let (tree, image) = fixture();
    let pack = make_pack(&tree);
    for seed in 200..=215u64 {
        let mut rng = Rng::new(seed);
        let mut kernel = Kernel::boot_image(&image).unwrap();
        let mut ks = Ksplice::new();
        ks.apply(&mut kernel, &pack, &ApplyOptions::default())
            .unwrap();

        let policy = random_policy(&mut rng);
        let windows = policy.max_attempts + rng.below(3) as u32;
        kernel.faults.reseed(seed);
        kernel
            .arm_fault(Fault::StackBusy { windows })
            .unwrap();

        let before = kernel.mem.image_checksum();
        let err = ks
            .undo(
                &mut kernel,
                "prop",
                &ApplyOptions::with_retry(policy.clone()),
            )
            .unwrap_err();
        assert!(
            matches!(err, ksplice_core::UndoError::NotQuiescent { .. }),
            "seed {seed}: {err}"
        );
        assert_eq!(
            kernel.mem.image_checksum(),
            before,
            "seed {seed}: undo abandon changed the memory image"
        );
        // The update is still live and still in effect.
        assert_eq!(ks.live_updates().count(), 1, "seed {seed}");
        assert_eq!(kernel.call_function("bump", &[3]).unwrap(), 6, "seed {seed}");
    }
}
