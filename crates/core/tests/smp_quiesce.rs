//! SMP quiescence properties (paper §5.2 on a multiprocessor).
//!
//! The contract under test, at every vCPU count:
//!
//! 1. A thread genuinely parked inside a patch target always forces
//!    `NotQuiescent` — the safety check never lets `stop_machine`
//!    write a trampoline over a frame that is still live.
//! 2. An abandoned apply leaves the text image checksum-identical to
//!    the pre-apply state: no torn writes, no half-installed sites.
//! 3. Whatever the interleaving, an apply either fully commits (the
//!    patched behavior is observable) or fully aborts (the old text is
//!    bit-identical) — there is no third state.

use ksplice_core::{
    create_update, ApplyError, ApplyOptions, CreateOptions, Ksplice, RetryPolicy, SmpConfig,
};
use ksplice_kernel::{Kernel, ThreadState};
use ksplice_lang::{Options, SourceTree};
use ksplice_patch::make_diff;

const WORKER: &str = "int keep_running = 1;\n\
int loops_done;\n\
int worker_loop() {\n\
    while (keep_running) {\n\
        loops_done = loops_done + 1;\n\
        msleep(1);\n\
    }\n\
    return loops_done;\n\
}\n\
int stop_worker() { keep_running = 0; return 0; }\n\
int answer() { return 1; }\n";

fn boot(cpus: u32) -> (Kernel, SourceTree) {
    let mut tree = SourceTree::new();
    tree.insert("kernel/worker.kc", WORKER);
    let mut kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
    if cpus > 1 {
        kernel.configure_smp(SmpConfig::with_cpus(cpus));
    }
    (kernel, tree)
}

fn worker_patch(tree: &SourceTree) -> ksplice_core::UpdatePack {
    let patched = WORKER.replace("loops_done + 1", "loops_done + 2");
    let patch = make_diff("kernel/worker.kc", WORKER, &patched).unwrap();
    let (pack, _) = create_update("busy", tree, &patch, &CreateOptions::default()).unwrap();
    pack
}

/// Property 1 + 2: a parked occupant forces `NotQuiescent` and the
/// abort is checksum-clean, at N = 1, 2, and 4.
#[test]
fn occupied_target_aborts_checksum_clean_at_every_n() {
    for cpus in [1u32, 2, 4] {
        let (mut kernel, tree) = boot(cpus);
        let tid = kernel.spawn("worker_loop", &[]).unwrap();
        kernel.run(500);
        assert!(matches!(
            kernel.thread(tid).unwrap().state,
            ThreadState::Runnable | ThreadState::Sleeping(_)
        ));

        let pack = worker_patch(&tree);
        let text_before = kernel.mem.text_checksum();
        let opts = ApplyOptions {
            retry: RetryPolicy::fixed(4, 200),
            smp: SmpConfig::with_cpus(cpus),
        };
        let err = Ksplice::new()
            .apply(&mut kernel, &pack, &opts)
            .expect_err("a live occupant must abort the apply");
        match err {
            ApplyError::NotQuiescent { fn_name, .. } => {
                assert_eq!(fn_name, "worker_loop", "cpus={cpus}")
            }
            other => panic!("cpus={cpus}: expected NotQuiescent, got {other}"),
        }
        assert_eq!(
            kernel.mem.text_checksum(),
            text_before,
            "cpus={cpus}: abort must leave text untouched"
        );
        // The kernel still runs: the old function is intact.
        assert_eq!(kernel.call_function("answer", &[]).unwrap(), 1);
    }
}

/// Property 3, randomized: across seeds and vCPU counts, a single
/// apply attempt against a drainable occupant either commits (new
/// behavior observable) or aborts (old text bit-identical). Never a
/// torn state.
#[test]
fn apply_is_atomic_under_every_interleaving() {
    let mut commits = 0u32;
    let mut aborts = 0u32;
    for cpus in [1u32, 2, 4] {
        for seed in 1..=8u64 {
            let (mut kernel, tree) = boot(cpus);
            if cpus > 1 {
                kernel.configure_smp(SmpConfig::with_cpus(cpus).with_seed(seed));
            }
            // A worker that drains on its own: clear the flag after a
            // seeded amount of progress so some schedules find the
            // function busy and others find it quiescent.
            kernel.spawn("worker_loop", &[]).unwrap();
            kernel.run(200 + seed * 37);
            if seed % 2 == 0 {
                kernel.call_function("stop_worker", &[]).unwrap();
            }
            kernel.run(100);

            let pack = worker_patch(&tree);
            let text_before = kernel.mem.text_checksum();
            let opts = ApplyOptions {
                retry: RetryPolicy::fixed(1, 0),
                smp: SmpConfig::with_cpus(cpus).with_seed(seed),
            };
            let mut ks = Ksplice::new();
            match ks.apply_traced(
                &mut kernel,
                &pack,
                &opts,
                &mut ksplice_core::trace::Tracer::disabled(),
            ) {
                Ok(report) => {
                    commits += 1;
                    assert_eq!(report.sites, 1);
                    assert_ne!(
                        kernel.mem.text_checksum(),
                        text_before,
                        "cpus={cpus} seed={seed}: commit must install the trampoline"
                    );
                }
                Err(ApplyError::NotQuiescent { .. }) => {
                    aborts += 1;
                    assert_eq!(
                        kernel.mem.text_checksum(),
                        text_before,
                        "cpus={cpus} seed={seed}: abort must be checksum-clean"
                    );
                }
                Err(other) => panic!("cpus={cpus} seed={seed}: unexpected error {other}"),
            }
            // Either way the kernel still executes code correctly.
            assert_eq!(kernel.call_function("answer", &[]).unwrap(), 1);
        }
    }
    // The sweep must have exercised both outcomes or it proves nothing.
    assert!(aborts > 0, "no schedule ever found the worker busy");
    assert!(commits > 0, "no schedule ever found the worker quiescent");
}

/// The §5.2 retry loop drains a parked-vCPU fault at N ≥ 2: the fault
/// parks a real thread in the target for its windows, then the parker
/// is released and the next attempt captures the machine.
#[test]
fn retry_drains_a_parked_vcpu() {
    let (mut kernel, tree) = boot(4);
    let pack = worker_patch(&tree);
    kernel
        .arm_fault(ksplice_kernel::Fault::parse("stack-busy:2").unwrap())
        .unwrap();
    let report = Ksplice::new()
        .apply_traced(
            &mut kernel,
            &pack,
            &ApplyOptions {
                retry: RetryPolicy::fixed(5, 500),
                smp: SmpConfig::with_cpus(4),
            },
            &mut ksplice_core::trace::Tracer::disabled(),
        )
        .expect("retries outlast the fault windows");
    assert_eq!(report.attempts, 3, "two parked attempts, then success");
    // The parked vCPU thread is gone once the fault released it.
    assert!(kernel
        .all_backtraces()
        .iter()
        .all(|(tid, _)| kernel.thread(*tid).is_some()));
}
