//! Non-quiescent functions (paper §5.2, §7.1).
//!
//! Ksplice "cannot be used to automatically upgrade non-quiescent kernel
//! functions" — e.g. `schedule`, which sleeping threads always occupy.
//! But its custom-code hooks "allow a programmer to use the DynAMOS
//! method for updating non-quiescent kernel threads": here, a `pre_apply`
//! hook asks the long-running threads to drain, so by the time the
//! safety-check retry loop runs, the function has become quiescent.

use ksplice_core::trace::{RingSink, Severity, Tracer};
use ksplice_core::{create_update, ApplyError, ApplyOptions, CreateOptions, Ksplice, RetryPolicy};
use ksplice_kernel::{Kernel, ThreadState};
use ksplice_lang::{Options, SourceTree};
use ksplice_patch::make_diff;

const SCHED: &str = "int keep_running = 1;\n\
int loops_done;\n\
int worker_loop() {\n\
    while (keep_running) {\n\
        loops_done = loops_done + 1;\n\
        msleep(1);\n\
    }\n\
    return loops_done;\n\
}\n";

fn boot() -> (Kernel, SourceTree) {
    let mut tree = SourceTree::new();
    tree.insert("kernel/worker.kc", SCHED);
    let kernel = Kernel::boot(&tree, &Options::distro()).unwrap();
    (kernel, tree)
}

#[test]
fn patching_an_occupied_function_abandons_after_retries() {
    let (mut kernel, tree) = boot();
    let tid = kernel.spawn("worker_loop", &[]).unwrap();
    kernel.run(500);
    assert!(matches!(
        kernel.thread(tid).unwrap().state,
        ThreadState::Runnable | ThreadState::Sleeping(_)
    ));

    // A plain patch to the occupied function: every retry finds the
    // thread's frame inside worker_loop → abandoned (§5.2).
    let patched = SCHED.replace("loops_done + 1", "loops_done + 2");
    let patch = make_diff("kernel/worker.kc", SCHED, &patched).unwrap();
    let (pack, _) = create_update("plain", &tree, &patch, &CreateOptions::default()).unwrap();
    let err = Ksplice::new()
        .apply(
            &mut kernel,
            &pack,
            &ApplyOptions::with_retry(RetryPolicy::fixed(4, 200)),
        )
        .unwrap_err();
    assert!(matches!(err, ApplyError::NotQuiescent { .. }), "{err}");
}

#[test]
fn every_failed_safety_check_is_recorded_with_the_blocking_function() {
    let (mut kernel, tree) = boot();
    let tid = kernel.spawn("worker_loop", &[]).unwrap();
    kernel.run(500);

    let patched = SCHED.replace("loops_done + 1", "loops_done + 2");
    let patch = make_diff("kernel/worker.kc", SCHED, &patched).unwrap();
    let (pack, _) = create_update("plain", &tree, &patch, &CreateOptions::default()).unwrap();

    let ring = RingSink::new(256);
    let events = ring.handle();
    let mut tracer = Tracer::new().with_sink(Box::new(ring));
    let err = Ksplice::new()
        .apply_traced(
            &mut kernel,
            &pack,
            &ApplyOptions::with_retry(RetryPolicy::fixed(4, 200)),
            &mut tracer,
        )
        .unwrap_err();

    // The error itself names the culprit and the attempt count...
    match &err {
        ApplyError::NotQuiescent {
            fn_name,
            tid: busy_tid,
            attempts,
        } => {
            assert_eq!(fn_name, "worker_loop");
            assert_eq!(*busy_tid, tid);
            assert_eq!(*attempts, 4);
        }
        other => panic!("expected NotQuiescent, got {other}"),
    }
    // ...and the event stream has one record per failed stop_machine
    // attempt, each carrying the blocking function and thread.
    let attempts = events.named("apply.stop_machine");
    assert_eq!(attempts.len(), 4);
    for (i, e) in attempts.iter().enumerate() {
        assert_eq!(e.severity, Severity::Warn);
        assert_eq!(e.u64_field("attempt"), Some(i as u64 + 1));
        assert_eq!(e.field("ok").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(e.str_field("busy_fn"), Some("worker_loop"));
        assert_eq!(e.u64_field("busy_tid"), Some(tid));
    }
    // The retry delays between attempts were recorded too, and the
    // whole apply ended in an abort event.
    assert_eq!(events.named("apply.retry_delay").len(), 3);
    assert_eq!(events.named("apply.abort").len(), 1);
    assert_eq!(tracer.counter("apply.stop_machine_attempts"), 4);
}

#[test]
fn dynamos_style_hook_drains_the_function_then_patches() {
    let (mut kernel, tree) = boot();
    let tid = kernel.spawn("worker_loop", &[]).unwrap();
    kernel.run(500);

    // The programmer's version: the same fix plus a pre_apply hook that
    // clears `keep_running`, so the occupying thread exits during the
    // retry delays and the stack check passes (§7.1's manual method).
    let patched = SCHED.replace("loops_done + 1", "loops_done + 2")
        + "int drain_workers() {\n    keep_running = 0;\n    return 0;\n}\n\
           ksplice_pre_apply(drain_workers);\n";
    let patch = make_diff("kernel/worker.kc", SCHED, &patched).unwrap();
    let (pack, _) = create_update("drained", &tree, &patch, &CreateOptions::default()).unwrap();
    let mut ks = Ksplice::new();
    ks.apply(
        &mut kernel,
        &pack,
        &ApplyOptions::with_retry(RetryPolicy::fixed(10, 100_000)),
    )
    .unwrap();

    // The old thread exited during the drain; the update is live.
    assert!(matches!(
        kernel.thread(tid).unwrap().state,
        ThreadState::Exited(_)
    ));
    assert_eq!(ks.live_updates().count(), 1);
}
