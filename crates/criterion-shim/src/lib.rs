//! A drop-in subset of the `criterion` bench API.
//!
//! The build environment has no registry access, so the real criterion
//! crate cannot be resolved. The bench suite only needs a small surface —
//! `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group` with throughput, `Bencher::iter`/`iter_batched`, and
//! the `criterion_group!`/`criterion_main!` macros — which this crate
//! provides with a plain timing loop: warm up once, run `sample_size`
//! samples, report min/mean/max (plus throughput when configured).

use std::time::{Duration, Instant};

/// Re-exported so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing for `iter_batched`; the shim treats every variant as
/// per-iteration (fresh input each sample), which is the conservative
/// choice and the only variant the suite uses.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
    NumBatches(u64),
    NumIterations(u64),
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` input per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

fn report(name: &str, durations: &[Duration], throughput: Option<Throughput>) {
    if durations.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().copied().unwrap_or_default();
    let max = durations.iter().max().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {name}: mean {mean:?} [min {min:?}, max {max:?}] over {} samples{rate}",
        durations.len()
    );
}

/// The bench driver: a registry of named timing loops.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each bench takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named bench.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Criterion {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b.durations, None);
        self
    }

    /// Opens a named group (throughput-aware benches).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benches sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.c.sample_size);
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            &b.durations,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Declares a bench group: either the struct form
/// `criterion_group! { name = benches; config = ...; targets = a, b }`
/// or the simple form `criterion_group!(benches, a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}
